package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file implements the minimal slice of the Prometheus exposition
// format the daemon needs: counters, gauges (including callback gauges
// sampled at scrape time) and one-label histogram vectors, rendered in the
// text format every Prometheus-compatible scraper ingests. The repo is
// stdlib-only, so this replaces client_golang.

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram accumulates observations into cumulative buckets, Prometheus
// style: counts[i] is the number of observations <= buckets[i], and the
// implicit +Inf bucket equals the total count.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // upper bounds, ascending
	counts  []uint64  // non-cumulative per-bucket counts
	sum     float64
	count   uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.count++
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
}

// snapshot returns cumulative bucket counts, the sum and the total count.
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var running uint64
	for i, c := range h.counts {
		running += c
		cum[i] = running
	}
	return cum, h.sum, h.count
}

// HistogramVec is a family of histograms partitioned by one label (the
// service uses it for per-job-kind latency).
type HistogramVec struct {
	mu       sync.Mutex
	label    string
	buckets  []float64
	children map[string]*Histogram
}

// With returns (creating if needed) the child histogram for a label value.
func (hv *HistogramVec) With(value string) *Histogram {
	hv.mu.Lock()
	defer hv.mu.Unlock()
	h, ok := hv.children[value]
	if !ok {
		h = &Histogram{
			buckets: hv.buckets,
			counts:  make([]uint64, len(hv.buckets)),
		}
		hv.children[value] = h
	}
	return h
}

// GaugeVec is a family of explicitly-set gauges partitioned by one label
// (the fleet coordinator uses it for per-shard liveness and restart
// counts). Children render sorted by label value, so the exposition is
// byte-stable across scrapes.
type GaugeVec struct {
	mu       sync.Mutex
	label    string
	children map[string]float64
}

// Set records the gauge value for a label value, creating the child on
// first use.
func (gv *GaugeVec) Set(value string, v float64) {
	gv.mu.Lock()
	defer gv.mu.Unlock()
	gv.children[value] = v
}

// Delete removes a child (a shard leaving the fleet takes its series
// with it).
func (gv *GaugeVec) Delete(value string) {
	gv.mu.Lock()
	defer gv.mu.Unlock()
	delete(gv.children, value)
}

// snapshot returns the children sorted by label value.
func (gv *GaugeVec) snapshot() ([]string, []float64) {
	gv.mu.Lock()
	defer gv.mu.Unlock()
	labels := make([]string, 0, len(gv.children))
	for l := range gv.children {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	vals := make([]float64, len(labels))
	for i, l := range labels {
		vals[i] = gv.children[l]
	}
	return labels, vals
}

// CounterVec is a family of monotonically-increasing float counters
// partitioned by one label (the daemon uses it for accumulated modeled
// energy per experiment kind). Children render sorted by label value.
type CounterVec struct {
	mu       sync.Mutex
	label    string
	children map[string]float64
}

// Add accumulates v into the child for a label value, creating it on
// first use. Non-positive deltas are ignored: counters only go up.
func (cv *CounterVec) Add(value string, v float64) {
	if v <= 0 {
		return
	}
	cv.mu.Lock()
	defer cv.mu.Unlock()
	cv.children[value] += v
}

// snapshot returns the children sorted by label value.
func (cv *CounterVec) snapshot() ([]string, []float64) {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	labels := make([]string, 0, len(cv.children))
	for l := range cv.children {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	vals := make([]float64, len(labels))
	for i, l := range labels {
		vals[i] = cv.children[l]
	}
	return labels, vals
}

// metricKind tags a registered family for rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeVec
	kindCounterVec
	kindHistogram
)

// family is one named metric with its help text and concrete instance.
type family struct {
	name, help string
	kind       metricKind
	counter    *Counter
	gaugeFn    func() float64
	gaugeVec   *GaugeVec
	counterVec *CounterVec
	hist       *HistogramVec
}

// Registry holds metric families in registration order and renders them in
// the Prometheus text exposition format.
type Registry struct {
	mu       sync.Mutex
	families []*family
	seen     map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{seen: map[string]bool{}}
}

func (r *Registry) register(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seen[f.name] {
		panic(fmt.Sprintf("service: duplicate metric %q", f.name))
	}
	r.seen[f.name] = true
	r.families = append(r.families, f)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// GaugeFunc registers a gauge whose value is sampled by fn at scrape time
// — the natural shape for instantaneous readings like queue depth.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindGauge, gaugeFn: fn})
}

// GaugeVec registers a one-label family of explicitly-set gauges.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	gv := &GaugeVec{label: label, children: map[string]float64{}}
	r.register(&family{name: name, help: help, kind: kindGaugeVec, gaugeVec: gv})
	return gv
}

// CounterVec registers a one-label family of float counters.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	cv := &CounterVec{label: label, children: map[string]float64{}}
	r.register(&family{name: name, help: help, kind: kindCounterVec, counterVec: cv})
	return cv
}

// HistogramVec registers a one-label histogram family with the given
// bucket upper bounds (ascending; +Inf is implicit).
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	hv := &HistogramVec{
		label:    label,
		buckets:  append([]float64(nil), buckets...),
		children: map[string]*Histogram{},
	}
	r.register(&family{name: name, help: help, kind: kindHistogram, hist: hv})
	return hv
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders every registered family in the text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
			return err
		}
		switch f.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", f.name, f.name, f.counter.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", f.name, f.name, formatValue(f.gaugeFn())); err != nil {
				return err
			}
		case kindGaugeVec:
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", f.name); err != nil {
				return err
			}
			labels, vals := f.gaugeVec.snapshot()
			for i, l := range labels {
				if _, err := fmt.Fprintf(w, "%s{%s=%q} %s\n", f.name, f.gaugeVec.label, l, formatValue(vals[i])); err != nil {
					return err
				}
			}
		case kindCounterVec:
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", f.name); err != nil {
				return err
			}
			labels, vals := f.counterVec.snapshot()
			for i, l := range labels {
				if _, err := fmt.Fprintf(w, "%s{%s=%q} %s\n", f.name, f.counterVec.label, l, formatValue(vals[i])); err != nil {
					return err
				}
			}
		case kindHistogram:
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", f.name); err != nil {
				return err
			}
			if err := writeHistogramVec(w, f.name, f.hist); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogramVec(w io.Writer, name string, hv *HistogramVec) error {
	hv.mu.Lock()
	labels := make([]string, 0, len(hv.children))
	for l := range hv.children {
		labels = append(labels, l)
	}
	hv.mu.Unlock()
	sort.Strings(labels)

	for _, l := range labels {
		h := hv.With(l)
		cum, sum, count := h.snapshot()
		for i, ub := range hv.buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d\n",
				name, hv.label, l, formatValue(ub), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, hv.label, l, count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum{%s=%q} %s\n", name, hv.label, l, formatValue(sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count{%s=%q} %d\n", name, hv.label, l, count); err != nil {
			return err
		}
	}
	return nil
}
