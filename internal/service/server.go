package service

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"clustereval/internal/experiment"
	"clustereval/internal/journal"
	"clustereval/internal/machine"
)

// Server translates HTTP onto a Service. It is an http.Handler; cmd/clusterd
// mounts it on a listener, tests mount it on httptest.
type Server struct {
	svc   *Service
	mux   *http.ServeMux
	start time.Time
}

// NewServer wires the REST routes around svc.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux(), start: svc.cfg.clock()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/machines", s.handleMachines)
	s.mux.HandleFunc("GET /v1/kinds", s.handleKinds)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/replication/ingest", s.handleReplicaIngest)
	s.mux.HandleFunc("PUT /v1/replication/peers", s.handleReplicaPeers)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// handleSubmit accepts a JobSpec, answering 200 for cache hits, 202 for
// queued jobs, 400 for invalid specs, 429 with Retry-After when admission
// control sheds the submission, and 503 when the queue is full or the
// daemon is draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: "+err.Error())
		return
	}
	view, err := s.svc.Submit(spec)
	var overload *OverloadError
	switch {
	case err == nil:
		code := http.StatusAccepted
		if view.State == StateDone { // served from cache
			code = http.StatusOK
		}
		writeJSON(w, code, view)
	case errors.As(err, new(*ValidationError)):
		writeError(w, http.StatusBadRequest, err.Error())
	case errors.As(err, &overload):
		secs := int(math.Ceil(overload.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.As(err, new(*DurabilityError)):
		// The journal or its replication quorum could not commit the
		// job. Retryable: the fleet re-routes or heals, then a resend
		// lands.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.svc.Jobs()})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	view, err := s.svc.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.svc.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleMachines lists the machine presets jobs can target, with enough
// shape (cores, nodes, fabric) for a client to build sensible specs.
func (s *Server) handleMachines(w http.ResponseWriter, _ *http.Request) {
	type machineInfo struct {
		Name         string  `json:"name"`
		Preset       string  `json:"preset"`
		CPU          string  `json:"cpu"`
		CoresPerNode int     `json:"cores_per_node"`
		Nodes        int     `json:"nodes"`
		Network      string  `json:"network"`
		DPPeakGFlops float64 `json:"dp_peak_gflops_per_node"`
		MemBWGBps    float64 `json:"mem_bw_gbps_per_node"`
		LinkGBps     float64 `json:"link_peak_gbps"`
	}
	out := []machineInfo{}
	for _, name := range machine.PresetNames() {
		m, _ := machine.Preset(name)
		out = append(out, machineInfo{
			Name:         m.Name,
			Preset:       name,
			CPU:          m.CPUName,
			CoresPerNode: m.Node.Cores(),
			Nodes:        m.Nodes,
			Network:      string(m.Network.Kind),
			DPPeakGFlops: float64(m.Node.DoublePeak()) / 1e9,
			MemBWGBps:    float64(m.Node.MemoryPeak()) / 1e9,
			LinkGBps:     float64(m.Network.LinkPeak) / 1e9,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"machines": out,
		"kinds":    Kinds(),
	})
}

// handleKinds publishes the experiment registry: every job kind with its
// title, paper figure and parameter schema, plus the shared fields every
// kind accepts, so clients can build valid specs without guessing. The
// listing is derived from internal/experiment's definitions — the same
// source that validates submissions — so it cannot drift from what the
// daemon actually runs.
func (s *Server) handleKinds(w http.ResponseWriter, _ *http.Request) {
	type kindInfo struct {
		Kind   string             `json:"kind"`
		Title  string             `json:"title"`
		Figure string             `json:"figure"`
		Fields []experiment.Field `json:"fields"`
	}
	out := []kindInfo{}
	for _, d := range experiment.Definitions() {
		fields := d.Fields
		if fields == nil {
			fields = []experiment.Field{}
		}
		out = append(out, kindInfo{Kind: d.Kind, Title: d.Title, Figure: d.Figure, Fields: fields})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"kinds":         out,
		"shared_fields": experiment.SharedFields(),
	})
}

// Degradation thresholds for /healthz: the daemon reports "degraded" when
// the queue is nearly full or, once enough outcomes accumulated to be
// meaningful, when at least half of the recent jobs failed.
const (
	healthSaturationLimit  = 0.9
	healthFailureRateLimit = 0.5
	healthMinSamples       = 8
)

// handleHealthz reports liveness plus the degradation signals: queue
// saturation and the recent failure rate. The status code stays 200 even
// when degraded — the daemon is alive and still making progress; "status"
// carries the judgement so orchestrators can alert without flapping
// restarts.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	sat := s.svc.QueueSaturation()
	rate, samples := s.svc.RecentFailureRate()
	status := "ok"
	if sat >= healthSaturationLimit || (samples >= healthMinSamples && rate >= healthFailureRateLimit) {
		status = "degraded"
	}
	report := map[string]any{
		"status":              status,
		"uptime_seconds":      s.svc.cfg.clock().Sub(s.start).Seconds(),
		"workers":             s.svc.Workers(),
		"queue_depth":         s.svc.QueueDepth(),
		"queue_capacity":      s.svc.QueueCapacity(),
		"queue_saturation":    sat,
		"recent_failure_rate": rate,
		"recent_samples":      samples,
		"breaker":             s.svc.BreakerState(),
		"durable":             s.svc.Durable(),
	}
	if shard := s.svc.ShardName(); shard != "" {
		report["shard"] = shard
	}
	if repl := s.svc.ReplicationStatus(); repl.Enabled {
		report["replication"] = repl
	}
	writeJSON(w, http.StatusOK, report)
}

// handleReplicaIngest is the follower half of journal replication: a
// primary POSTs a framed batch of its journal records, and the reply
// carries the position this shard durably holds for that source — 200
// when the batch extended (or merely duplicated) the replica, 409 when
// a gap means the primary must resend from last_seq+1.
func (s *Server) handleReplicaIngest(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading replication batch: "+err.Error())
		return
	}
	last, err := s.svc.IngestReplica(data)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]uint64{"last_seq": last})
	case errors.Is(err, journal.ErrGap):
		writeJSON(w, http.StatusConflict, map[string]uint64{"last_seq": last})
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// peersRequest is the body of PUT /v1/replication/peers: the write
// quorum and follower set the fleet layer wants this shard to ship to.
type peersRequest struct {
	Quorum int    `json:"quorum"`
	Peers  []Peer `json:"peers"`
}

// handleReplicaPeers lets the fleet layer (re)point this shard's
// replication at the current follower addresses — children restart on
// ephemeral ports, so the peer set changes across a shard's lifetime.
func (s *Server) handleReplicaPeers(w http.ResponseWriter, r *http.Request) {
	var req peersRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid peer set: "+err.Error())
		return
	}
	if err := s.svc.SetReplication(req.Quorum, req.Peers); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.svc.ReplicationStatus())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.svc.Registry().WriteText(w)
}
