package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSecondsString(t *testing.T) {
	cases := []struct {
		in   Seconds
		want string
	}{
		{0, "0 s"},
		{1.5e-9, "1.5 ns"},
		{2e-6, "2 us"},
		{3.25e-3, "3.25 ms"},
		{12.5, "12.5 s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Seconds(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{512, "512 B"},
		{2048, "2 KiB"},
		{Bytes(3 * MiB), "3 MiB"},
		{Bytes(1.5 * GiB), "1.5 GiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestBandwidthGB(t *testing.T) {
	b := BytesPerSecond(6.8 * Giga)
	if got := b.GB(); math.Abs(got-6.8) > 1e-12 {
		t.Errorf("GB() = %v, want 6.8", got)
	}
	if s := b.String(); !strings.Contains(s, "GB/s") {
		t.Errorf("String() = %q, want GB/s suffix", s)
	}
}

func TestFlopsString(t *testing.T) {
	cases := []struct {
		in   FlopsPerSecond
		want string
	}{
		{FlopsPerSecond(70.4 * Giga), "70.4 GFlop/s"},
		{FlopsPerSecond(2.76 * Peta), "2.76 PFlop/s"},
		{FlopsPerSecond(1.2 * Tera), "1.2 TFlop/s"},
		{FlopsPerSecond(5 * Mega), "5 MFlop/s"},
		{123, "123 Flop/s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("FlopsPerSecond.String() = %q, want %q", got, c.want)
		}
	}
}

func TestTimeFor(t *testing.T) {
	got := TimeFor(Bytes(1*Giga), BytesPerSecond(1*Giga))
	if math.Abs(float64(got)-1) > 1e-12 {
		t.Errorf("TimeFor(1GB, 1GB/s) = %v, want 1s", got)
	}
	if !math.IsInf(float64(TimeFor(10, 0)), 1) {
		t.Error("TimeFor with zero bandwidth should be +Inf")
	}
	if !math.IsInf(float64(TimeFor(10, -5)), 1) {
		t.Error("TimeFor with negative bandwidth should be +Inf")
	}
}

func TestComputeTime(t *testing.T) {
	got := ComputeTime(70.4*Giga, FlopsPerSecond(70.4*Giga))
	if math.Abs(float64(got)-1) > 1e-12 {
		t.Errorf("ComputeTime = %v, want 1s", got)
	}
	if !math.IsInf(float64(ComputeTime(1, 0)), 1) {
		t.Error("ComputeTime with zero rate should be +Inf")
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(29.2, 100); got != 29.2 {
		t.Errorf("Percent = %v", got)
	}
	if got := Percent(5, 0); got != 0 {
		t.Errorf("Percent with zero total = %v, want 0", got)
	}
}

// Property: TimeFor is linear in the byte count and inverse in bandwidth.
func TestTimeForLinearity(t *testing.T) {
	f := func(nRaw, bRaw uint32) bool {
		n := Bytes(float64(nRaw%1e6) + 1)
		b := BytesPerSecond(float64(bRaw%1e6) + 1)
		t1 := float64(TimeFor(n, b))
		t2 := float64(TimeFor(2*n, b))
		t3 := float64(TimeFor(n, 2*b))
		return math.Abs(t2-2*t1) < 1e-9*t1+1e-15 && math.Abs(t3-t1/2) < 1e-9*t1+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Seconds.Add is commutative and Micro is consistent.
func TestSecondsProperties(t *testing.T) {
	f := func(a, b float32) bool {
		x, y := Seconds(a), Seconds(b)
		if x.Add(y) != y.Add(x) {
			return false
		}
		return math.Abs(x.Micro()-float64(x)*1e6) < 1e-6*math.Abs(float64(x))+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWattsString(t *testing.T) {
	cases := []struct {
		in   Watts
		want string
	}{
		{180, "180 W"},
		{Watts(1.5 * Kilo), "1.5 kW"},
		{Watts(2.2 * Mega), "2.2 MW"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Watts(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
	if got := Watts(2500).Kilo(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Kilo() = %v, want 2.5", got)
	}
}

func TestJoulesString(t *testing.T) {
	cases := []struct {
		in   Joules
		want string
	}{
		{42, "42 J"},
		{Joules(3 * Kilo), "3 kJ"},
		{Joules(1.25 * Mega), "1.25 MJ"},
		{Joules(7 * Giga), "7 GJ"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Joules(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
	if got := Joules(3600 * Kilo).KWh(); math.Abs(got-1) > 1e-12 {
		t.Errorf("KWh() = %v, want 1", got)
	}
}

func TestEnergyFor(t *testing.T) {
	if got := EnergyFor(100, 30); got != 3000 {
		t.Errorf("EnergyFor(100 W, 30 s) = %v, want 3000 J", got)
	}
	if got := EnergyFor(-5, 10); got != 0 {
		t.Errorf("EnergyFor(-5 W, 10 s) = %v, want 0", got)
	}
	if got := EnergyFor(5, -10); got != 0 {
		t.Errorf("EnergyFor(5 W, -10 s) = %v, want 0", got)
	}
	// Energy is power x time exactly, over a quick sweep.
	err := quick.Check(func(p, s float64) bool {
		pw, ts := Watts(math.Abs(p)), Seconds(math.Abs(s))
		return float64(EnergyFor(pw, ts)) == float64(pw)*float64(ts)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}
