// Package units provides the physical quantities used throughout the
// cluster-evaluation framework: byte sizes, bandwidths, floating-point rates
// and virtual durations. All simulation time is carried as float64 seconds
// (type Seconds) because the discrete-event engine needs exact arithmetic on
// arbitrarily small increments, which time.Duration's integer nanoseconds
// would truncate.
package units

import (
	"fmt"
	"math"
)

// Binary byte sizes.
const (
	KiB float64 = 1 << 10
	MiB float64 = 1 << 20
	GiB float64 = 1 << 30
	TiB float64 = 1 << 40
)

// Decimal (SI) multipliers, used for FLOP rates and vendor bandwidth specs.
const (
	Kilo float64 = 1e3
	Mega float64 = 1e6
	Giga float64 = 1e9
	Tera float64 = 1e12
	Peta float64 = 1e15
)

// Seconds is a span of virtual time.
type Seconds float64

// Add returns s + t.
func (s Seconds) Add(t Seconds) Seconds { return s + t }

// Micro returns the duration expressed in microseconds.
func (s Seconds) Micro() float64 { return float64(s) * 1e6 }

// String renders the duration with an auto-selected SI prefix.
func (s Seconds) String() string {
	v := float64(s)
	av := math.Abs(v)
	switch {
	case av == 0:
		return "0 s"
	case av < 1e-6:
		return fmt.Sprintf("%.3g ns", v*1e9)
	case av < 1e-3:
		return fmt.Sprintf("%.3g us", v*1e6)
	case av < 1:
		return fmt.Sprintf("%.3g ms", v*1e3)
	default:
		return fmt.Sprintf("%.4g s", v)
	}
}

// Bytes is a data volume in bytes.
type Bytes float64

// String renders the volume with a binary prefix.
func (b Bytes) String() string {
	v := float64(b)
	av := math.Abs(v)
	switch {
	case av < KiB:
		return fmt.Sprintf("%.0f B", v)
	case av < MiB:
		return fmt.Sprintf("%.3g KiB", v/KiB)
	case av < GiB:
		return fmt.Sprintf("%.3g MiB", v/MiB)
	default:
		return fmt.Sprintf("%.3g GiB", v/GiB)
	}
}

// BytesPerSecond is a bandwidth. Vendor peaks in this package use the
// decimal convention (1 GB/s = 1e9 B/s) to match the paper's Table I.
type BytesPerSecond float64

// GB returns the bandwidth in decimal gigabytes per second.
func (b BytesPerSecond) GB() float64 { return float64(b) / Giga }

// String renders the bandwidth in GB/s.
func (b BytesPerSecond) String() string {
	return fmt.Sprintf("%.4g GB/s", b.GB())
}

// FlopsPerSecond is a floating-point throughput.
type FlopsPerSecond float64

// Giga returns the rate in GFlop/s.
func (f FlopsPerSecond) Giga() float64 { return float64(f) / Giga }

// Tera returns the rate in TFlop/s.
func (f FlopsPerSecond) Tera() float64 { return float64(f) / Tera }

// String renders the rate with an auto-selected prefix.
func (f FlopsPerSecond) String() string {
	v := float64(f)
	switch {
	case v >= Peta:
		return fmt.Sprintf("%.4g PFlop/s", v/Peta)
	case v >= Tera:
		return fmt.Sprintf("%.4g TFlop/s", v/Tera)
	case v >= Giga:
		return fmt.Sprintf("%.4g GFlop/s", v/Giga)
	case v >= Mega:
		return fmt.Sprintf("%.4g MFlop/s", v/Mega)
	default:
		return fmt.Sprintf("%.4g Flop/s", v)
	}
}

// TimeFor returns how long moving n bytes takes at bandwidth b.
// A non-positive bandwidth yields +Inf (a cut link), never a division panic.
func TimeFor(n Bytes, b BytesPerSecond) Seconds {
	if b <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(n) / float64(b))
}

// ComputeTime returns how long f floating-point operations take at rate r.
func ComputeTime(flops float64, r FlopsPerSecond) Seconds {
	if r <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(flops / float64(r))
}

// Watts is an electrical power draw. Machine power models carry every
// per-component draw (cores, memory, NIC, node floor) in this type so
// dimension errors surface at compile time, like the other quantities.
type Watts float64

// Kilo returns the power in kilowatts.
func (w Watts) Kilo() float64 { return float64(w) / Kilo }

// String renders the power with an auto-selected SI prefix.
func (w Watts) String() string {
	v := float64(w)
	av := math.Abs(v)
	switch {
	case av >= Mega:
		return fmt.Sprintf("%.4g MW", v/Mega)
	case av >= Kilo:
		return fmt.Sprintf("%.4g kW", v/Kilo)
	default:
		return fmt.Sprintf("%.4g W", v)
	}
}

// Joules is an amount of energy: power integrated over modeled time.
// Energy-to-solution figures are carried in this type.
type Joules float64

// Kilo returns the energy in kilojoules.
func (j Joules) Kilo() float64 { return float64(j) / Kilo }

// KWh returns the energy in kilowatt-hours (the ThunderX2 study's unit
// for full-system runs).
func (j Joules) KWh() float64 { return float64(j) / (Kilo * 3600) }

// String renders the energy with an auto-selected SI prefix.
func (j Joules) String() string {
	v := float64(j)
	av := math.Abs(v)
	switch {
	case av >= Giga:
		return fmt.Sprintf("%.4g GJ", v/Giga)
	case av >= Mega:
		return fmt.Sprintf("%.4g MJ", v/Mega)
	case av >= Kilo:
		return fmt.Sprintf("%.4g kJ", v/Kilo)
	default:
		return fmt.Sprintf("%.4g J", v)
	}
}

// EnergyFor returns the energy drawn by power p held for duration t.
// Negative inputs clamp to zero: a fault-degraded model must never
// produce negative energy.
func EnergyFor(p Watts, t Seconds) Joules {
	if p <= 0 || t <= 0 {
		return 0
	}
	return Joules(float64(p) * float64(t))
}

// Percent formats v as a percentage of total, guarding against zero totals.
func Percent(v, total float64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * v / total
}
