package hpcg

import (
	"fmt"
	"math"

	"clustereval/internal/omp"
)

// MG is a geometric multigrid hierarchy over a Problem, used as the CG
// preconditioner exactly as HPCG specifies: one pre-smooth, recursion on
// the injected coarse grid, one post-smooth; a few SymGS sweeps on the
// coarsest level.
type MG struct {
	levels []*Problem
	// f2c maps a coarse row to its fine-grid representative (injection).
	f2c [][]int32
}

// NewMG coarsens the problem by factors of two while every dimension stays
// even and at least 4, up to maxLevels total levels.
func NewMG(fine *Problem, maxLevels int) (*MG, error) {
	if maxLevels <= 0 {
		return nil, fmt.Errorf("hpcg: need at least one level")
	}
	mg := &MG{levels: []*Problem{fine}}
	cur := fine
	for len(mg.levels) < maxLevels {
		nx, ny, nz := cur.NX/2, cur.NY/2, cur.NZ/2
		if cur.NX%2 != 0 || cur.NY%2 != 0 || cur.NZ%2 != 0 || nx < 2 || ny < 2 || nz < 2 {
			break
		}
		coarse, err := NewProblem(nx, ny, nz)
		if err != nil {
			return nil, err
		}
		// Injection operator: coarse point (x,y,z) -> fine point (2x,2y,2z).
		f2c := make([]int32, coarse.NRows)
		for z := 0; z < nz; z++ {
			for y := 0; y < ny; y++ {
				for x := 0; x < nx; x++ {
					ci := (z*ny+y)*nx + x
					fi := (2*z*cur.NY+2*y)*cur.NX + 2*x
					f2c[ci] = int32(fi)
				}
			}
		}
		mg.levels = append(mg.levels, coarse)
		mg.f2c = append(mg.f2c, f2c)
		cur = coarse
	}
	return mg, nil
}

// Levels returns the number of grid levels.
func (mg *MG) Levels() int { return len(mg.levels) }

// Apply runs one V-cycle computing z ~ A^{-1} r on the finest level.
func (mg *MG) Apply(r []float64) []float64 {
	z := make([]float64, len(r))
	mg.cycle(0, r, z)
	return z
}

func (mg *MG) cycle(level int, r, z []float64) {
	p := mg.levels[level]
	if level == len(mg.levels)-1 {
		// Coarsest: a handful of SymGS sweeps.
		for s := 0; s < 4; s++ {
			p.SymGS(r, z)
		}
		return
	}
	// Pre-smooth.
	p.SymGS(r, z)
	// Residual: rc = restrict(r - A z).
	az := make([]float64, p.NRows)
	p.SpMV(nil, z, az)
	coarse := mg.levels[level+1]
	rc := make([]float64, coarse.NRows)
	for ci, fi := range mg.f2c[level] {
		rc[ci] = r[fi] - az[fi]
	}
	zc := make([]float64, coarse.NRows)
	mg.cycle(level+1, rc, zc)
	// Prolong (injection transpose) and correct.
	for ci, fi := range mg.f2c[level] {
		z[fi] += zc[ci]
	}
	// Post-smooth.
	p.SymGS(r, z)
}

// CGResult reports a preconditioned-CG solve.
type CGResult struct {
	Iterations int
	Residuals  []float64 // ||r||_2 after each iteration, starting with iter 0
	Converged  bool
}

// CG runs HPCG's preconditioned conjugate gradient on A*x = b, starting
// from x = 0, for at most maxIter iterations or until the residual norm
// falls below tol * ||b||.
func CG(p *Problem, mg *MG, team *omp.Team, b []float64, maxIter int, tol float64) ([]float64, CGResult, error) {
	if len(b) != p.NRows {
		return nil, CGResult{}, fmt.Errorf("hpcg: rhs length %d, want %d", len(b), p.NRows)
	}
	if maxIter <= 0 {
		return nil, CGResult{}, fmt.Errorf("hpcg: maxIter must be positive")
	}
	n := p.NRows
	x := make([]float64, n)
	r := append([]float64(nil), b...) // r = b - A*0
	ap := make([]float64, n)

	normB := math.Sqrt(Dot(team, b, b))
	if normB == 0 {
		return x, CGResult{Converged: true}, nil
	}

	res := CGResult{}
	z := mg.Apply(r)
	pvec := append([]float64(nil), z...)
	rtz := Dot(team, r, z)

	for iter := 0; iter < maxIter; iter++ {
		p.SpMV(team, pvec, ap)
		alpha := rtz / Dot(team, pvec, ap)
		WAXPBY(team, 1, x, alpha, pvec, x)
		WAXPBY(team, 1, r, -alpha, ap, r)

		norm := math.Sqrt(Dot(team, r, r))
		res.Residuals = append(res.Residuals, norm)
		res.Iterations = iter + 1
		if norm <= tol*normB {
			res.Converged = true
			break
		}
		z = mg.Apply(r)
		rtzNew := Dot(team, r, z)
		beta := rtzNew / rtz
		rtz = rtzNew
		WAXPBY(team, 1, z, beta, pvec, pvec)
	}
	return x, res, nil
}
