package hpcg

import (
	"math"
	"testing"

	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/mpisim"
)

func distWorld(t *testing.T, ranks int) *mpisim.World {
	t.Helper()
	fab, err := interconnect.NewTofuD(machine.CTEArm(), 12)
	if err != nil {
		t.Fatal(err)
	}
	w, err := mpisim.NewWorld(fab, ranks, 4)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestDistCGMatchesSerial(t *testing.T) {
	const nx, ny, nz = 6, 6, 12
	prob, err := NewProblem(nx, ny, nz)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, prob.NRows)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	xRef, resRef, err := SerialJacobiCG(prob, b, 200, 1e-10)
	if err != nil || !resRef.Converged {
		t.Fatalf("serial reference: err=%v converged=%v", err, resRef.Converged)
	}

	for _, ranks := range []int{1, 2, 3, 5} {
		w := distWorld(t, ranks)
		x, res, err := DistCG(w, nx, ny, nz, b, 200, 1e-10)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if !res.Converged {
			t.Fatalf("ranks=%d: did not converge", ranks)
		}
		if res.Iterations != resRef.Iterations {
			t.Errorf("ranks=%d: %d iterations vs serial %d", ranks, res.Iterations, resRef.Iterations)
		}
		for i := range x {
			if math.Abs(x[i]-xRef[i]) > 1e-8 {
				t.Fatalf("ranks=%d: solution differs at %d: %v vs %v", ranks, i, x[i], xRef[i])
			}
		}
		// Residual history matches bit-for-bit semantics up to reduction
		// association; check the final norm closely.
		lastD := res.Residuals[len(res.Residuals)-1]
		lastS := resRef.Residuals[len(resRef.Residuals)-1]
		if math.Abs(lastD-lastS) > 1e-9*math.Abs(lastS)+1e-12 {
			t.Errorf("ranks=%d: final residual %v vs serial %v", ranks, lastD, lastS)
		}
	}
}

func TestDistCGSolvesSystem(t *testing.T) {
	const nx, ny, nz = 4, 4, 8
	prob, _ := NewProblem(nx, ny, nz)
	// Manufactured: b = A * (1..n pattern).
	want := make([]float64, prob.NRows)
	for i := range want {
		want[i] = float64(i%5) + 1
	}
	b := make([]float64, prob.NRows)
	prob.SpMV(nil, want, b)

	w := distWorld(t, 4)
	x, res, err := DistCG(w, nx, ny, nz, b, 300, 1e-11)
	if err != nil || !res.Converged {
		t.Fatalf("err=%v converged=%v", err, res.Converged)
	}
	for i := range x {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	if res.Elapsed <= 0 {
		t.Error("no virtual time accounted for the solve")
	}
}

func TestDistCGCommunicationCosts(t *testing.T) {
	// More ranks on more nodes => more halo/reduction traffic: virtual
	// time must grow with the rank count for the same problem.
	const nx, ny, nz = 4, 4, 12
	prob, _ := NewProblem(nx, ny, nz)
	b := make([]float64, prob.NRows)
	for i := range b {
		b[i] = 1
	}
	elapsed := func(ranks, perNode int) float64 {
		fab, err := interconnect.NewTofuD(machine.CTEArm(), 12)
		if err != nil {
			t.Fatal(err)
		}
		w, err := mpisim.NewWorld(fab, ranks, perNode)
		if err != nil {
			t.Fatal(err)
		}
		_, res, err := DistCG(w, nx, ny, nz, b, 100, 1e-9)
		if err != nil || !res.Converged {
			t.Fatalf("ranks=%d: err=%v converged=%v", ranks, err, res.Converged)
		}
		return float64(res.Elapsed)
	}
	oneRank := elapsed(1, 1)
	sixRanksSixNodes := elapsed(6, 1)
	if sixRanksSixNodes <= oneRank {
		t.Errorf("inter-node CG should pay for communication: 1 rank %v vs 6 ranks %v",
			oneRank, sixRanksSixNodes)
	}
}

func TestDistCGValidation(t *testing.T) {
	w := distWorld(t, 4)
	if _, _, err := DistCG(w, 4, 4, 2, make([]float64, 32), 10, 1e-6); err == nil {
		t.Error("too few z-planes accepted")
	}
	if _, _, err := DistCG(w, 4, 4, 8, make([]float64, 10), 10, 1e-6); err == nil {
		t.Error("wrong rhs length accepted")
	}
	if _, _, err := DistCG(w, 4, 4, 8, make([]float64, 128), 0, 1e-6); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestDistCGZeroRHS(t *testing.T) {
	w := distWorld(t, 3)
	x, res, err := DistCG(w, 4, 4, 6, make([]float64, 96), 10, 1e-6)
	if err != nil || !res.Converged {
		t.Fatalf("zero rhs: err=%v converged=%v", err, res.Converged)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero rhs must give zero solution")
		}
	}
}

func TestSerialJacobiCGValidation(t *testing.T) {
	p, _ := NewProblem(4, 4, 4)
	if _, _, err := SerialJacobiCG(p, make([]float64, 3), 10, 1e-6); err == nil {
		t.Error("wrong rhs accepted")
	}
	if _, _, err := SerialJacobiCG(p, make([]float64, p.NRows), 0, 1e-6); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestSlabPartition(t *testing.T) {
	// Slabs tile [0, nz) without gaps or overlap for any rank count.
	for _, nz := range []int{8, 12, 13} {
		for ranks := 1; ranks <= nz; ranks++ {
			covered := 0
			prevEnd := 0
			for r := 0; r < ranks; r++ {
				s := slabOf(nz, ranks, r)
				if s.z0 != prevEnd {
					t.Fatalf("nz=%d ranks=%d: gap at rank %d", nz, ranks, r)
				}
				if s.z1 <= s.z0 {
					t.Fatalf("nz=%d ranks=%d: empty slab at rank %d", nz, ranks, r)
				}
				covered += s.z1 - s.z0
				prevEnd = s.z1
			}
			if covered != nz {
				t.Fatalf("nz=%d ranks=%d: covered %d", nz, ranks, covered)
			}
		}
	}
}
