package hpcg

import (
	"fmt"
	"math"

	"clustereval/internal/mpisim"
	"clustereval/internal/units"
)

// Distributed HPCG: the paper runs the benchmark MPI-only with one rank per
// core. This file implements a genuinely distributed conjugate gradient
// over the simulated MPI runtime — 1-D slab decomposition along z, halo
// exchange of boundary planes before every SpMV, and global reductions for
// the dot products — so the communication structure of the real benchmark
// executes (and is priced) message by message.
//
// The distributed solver uses Jacobi (diagonal) preconditioning: symmetric
// Gauss-Seidel has a sequential dependency across the decomposition, which
// is exactly why the reference HPCG gains nothing from intra-rank threading
// (Section IV-B citing Ruiz et al.).

// slab describes one rank's z-range of the global grid.
type slab struct {
	z0, z1 int // owned planes [z0, z1)
}

func slabOf(nz, ranks, rank int) slab {
	base, extra := nz/ranks, nz%ranks
	z0 := rank*base + min2(rank, extra)
	z1 := z0 + base
	if rank < extra {
		z1++
	}
	return slab{z0: z0, z1: z1}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// DistCGResult reports a distributed solve.
type DistCGResult struct {
	Iterations int
	Residuals  []float64
	Converged  bool
	Elapsed    units.Seconds // virtual time of the whole solve
}

// DistCG solves the nx x ny x nz HPCG system distributed over the world's
// ranks and returns the assembled solution (identical on the semantic
// level to a serial Jacobi-preconditioned CG). b is the global right-hand
// side, length nx*ny*nz.
func DistCG(w *mpisim.World, nx, ny, nz int, b []float64, maxIter int, tol float64) ([]float64, DistCGResult, error) {
	if len(b) != nx*ny*nz {
		return nil, DistCGResult{}, fmt.Errorf("hpcg: rhs length %d, want %d", len(b), nx*ny*nz)
	}
	if maxIter <= 0 {
		return nil, DistCGResult{}, fmt.Errorf("hpcg: maxIter must be positive")
	}
	ranks := w.Size()
	if nz < ranks {
		return nil, DistCGResult{}, fmt.Errorf("hpcg: %d z-planes cannot split over %d ranks", nz, ranks)
	}

	plane := nx * ny
	parts := make([][]float64, ranks)
	var result DistCGResult
	resultSet := false

	err := w.Run(func(c *mpisim.Comm) {
		r := c.Rank()
		sl := slabOf(nz, ranks, r)
		local := sl.z1 - sl.z0

		// The local operator: this rank's planes plus one halo plane on
		// each interior side. Rows are evaluated only for owned planes.
		haloLo, haloHi := 0, 0
		if sl.z0 > 0 {
			haloLo = 1
		}
		if sl.z1 < nz {
			haloHi = 1
		}
		prob, err := NewProblem(nx, ny, local+haloLo+haloHi)
		if err != nil {
			panic(err)
		}

		// Vectors over the extended (halo-included) slab.
		ext := func() []float64 { return make([]float64, plane*(local+haloLo+haloHi)) }
		ownedOf := func(v []float64) []float64 {
			return v[plane*haloLo : plane*(haloLo+local)]
		}

		x := ext()
		p := ext()
		ap := ext()
		res := make([]float64, plane*local) // owned residual
		copy(res, b[plane*sl.z0:plane*sl.z1])

		dotOwned := func(a, bb []float64) float64 {
			acc := 0.0
			for i := range a {
				acc += a[i] * bb[i]
			}
			return c.AllreduceScalar(acc, mpisim.OpSum)
		}

		normB := math.Sqrt(dotOwned(res, res))
		if normB == 0 {
			parts[r] = make([]float64, plane*local)
			if r == 0 {
				result = DistCGResult{Converged: true}
				resultSet = true
			}
			return
		}

		// Jacobi preconditioner: z = r / diag. The diagonal is owned-only.
		diag := make([]float64, plane*local)
		for i := range diag {
			diag[i] = prob.diag[plane*haloLo+i]
		}
		z := make([]float64, plane*local)
		for i := range z {
			z[i] = res[i] / diag[i]
		}
		copy(ownedOf(p), z)
		rtz := dotOwned(res, z)

		// exchangeHalos fills v's halo planes from the neighbours.
		planeBytes := units.Bytes(8 * plane)
		exchange := func(v []float64) {
			var reqs []*mpisim.Request
			if haloLo == 1 {
				first := append([]float64(nil), v[plane*haloLo:plane*(haloLo+1)]...)
				reqs = append(reqs, c.Isend(r-1, 7, planeBytes, first))
			}
			if haloHi == 1 {
				last := append([]float64(nil), v[plane*(haloLo+local-1):plane*(haloLo+local)]...)
				reqs = append(reqs, c.Isend(r+1, 8, planeBytes, last))
			}
			if haloHi == 1 {
				msg := c.Recv(r+1, 7)
				copy(v[plane*(haloLo+local):], msg.Payload.([]float64))
			}
			if haloLo == 1 {
				msg := c.Recv(r-1, 8)
				copy(v[:plane], msg.Payload.([]float64))
			}
			c.WaitAll(reqs)
		}

		start := c.Now()
		var history []float64
		converged := false
		iters := 0
		for it := 0; it < maxIter; it++ {
			exchange(p)
			// SpMV on owned rows only; halo planes provide the coupling.
			prob.SpMV(nil, p, ap)
			pap := dotOwned(ownedOf(p), ownedOf(ap))
			alpha := rtz / pap
			xo, po, apo := ownedOf(x), ownedOf(p), ownedOf(ap)
			for i := range res {
				xo[i] += alpha * po[i]
				res[i] -= alpha * apo[i]
			}
			norm := math.Sqrt(dotOwned(res, res))
			history = append(history, norm)
			iters = it + 1
			if norm <= tol*normB {
				converged = true
				break
			}
			for i := range z {
				z[i] = res[i] / diag[i]
			}
			rtzNew := dotOwned(res, z)
			beta := rtzNew / rtz
			rtz = rtzNew
			for i := range po {
				po[i] = z[i] + beta*po[i]
			}
		}
		parts[r] = append([]float64(nil), ownedOf(x)...)
		if r == 0 {
			result = DistCGResult{
				Iterations: iters,
				Residuals:  history,
				Converged:  converged,
				Elapsed:    c.Now() - start,
			}
			resultSet = true
		}
	})
	if err != nil {
		return nil, DistCGResult{}, err
	}
	if !resultSet {
		return nil, DistCGResult{}, fmt.Errorf("hpcg: no result produced")
	}
	out := make([]float64, 0, nx*ny*nz)
	for r := 0; r < ranks; r++ {
		out = append(out, parts[r]...)
	}
	return out, result, nil
}

// SerialJacobiCG is the single-process reference for DistCG: identical
// mathematics (Jacobi-preconditioned CG) without decomposition.
func SerialJacobiCG(p *Problem, b []float64, maxIter int, tol float64) ([]float64, CGResult, error) {
	if len(b) != p.NRows {
		return nil, CGResult{}, fmt.Errorf("hpcg: rhs length %d, want %d", len(b), p.NRows)
	}
	if maxIter <= 0 {
		return nil, CGResult{}, fmt.Errorf("hpcg: maxIter must be positive")
	}
	n := p.NRows
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	ap := make([]float64, n)
	dot := func(a, bb []float64) float64 {
		acc := 0.0
		for i := range a {
			acc += a[i] * bb[i]
		}
		return acc
	}
	normB := math.Sqrt(dot(b, b))
	if normB == 0 {
		return x, CGResult{Converged: true}, nil
	}
	z := make([]float64, n)
	for i := range z {
		z[i] = r[i] / p.diag[i]
	}
	pv := append([]float64(nil), z...)
	rtz := dot(r, z)
	res := CGResult{}
	for it := 0; it < maxIter; it++ {
		p.SpMV(nil, pv, ap)
		alpha := rtz / dot(pv, ap)
		for i := range x {
			x[i] += alpha * pv[i]
			r[i] -= alpha * ap[i]
		}
		norm := math.Sqrt(dot(r, r))
		res.Residuals = append(res.Residuals, norm)
		res.Iterations = it + 1
		if norm <= tol*normB {
			res.Converged = true
			break
		}
		for i := range z {
			z[i] = r[i] / p.diag[i]
		}
		rtzNew := dot(r, z)
		beta := rtzNew / rtz
		rtz = rtzNew
		for i := range pv {
			pv[i] = z[i] + beta*pv[i]
		}
	}
	return x, res, nil
}
