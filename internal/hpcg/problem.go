// Package hpcg implements the HPCG benchmark of Section IV-B: a real
// multigrid-preconditioned conjugate-gradient solver on the standard
// 27-point stencil (runnable and convergence-tested at laptop sizes), and a
// bandwidth-bound performance model that regenerates Fig. 7 for the vanilla
// and vendor-optimized versions on both clusters.
package hpcg

import (
	"fmt"

	"clustereval/internal/omp"
)

// Problem is the HPCG linear system on an nx x ny x nz grid: the 27-point
// operator with diagonal 26 and off-diagonals -1 (boundary rows simply have
// fewer neighbours), which is symmetric positive definite.
type Problem struct {
	NX, NY, NZ int
	NRows      int
	// CSR-like storage with fixed-width rows (<= 27 nonzeros).
	cols [][]int32
	vals [][]float64
	diag []float64
}

// NewProblem builds the operator for the given local grid.
func NewProblem(nx, ny, nz int) (*Problem, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("hpcg: invalid grid %dx%dx%d", nx, ny, nz)
	}
	n := nx * ny * nz
	p := &Problem{
		NX: nx, NY: ny, NZ: nz, NRows: n,
		cols: make([][]int32, n),
		vals: make([][]float64, n),
		diag: make([]float64, n),
	}
	idx := func(x, y, z int) int32 { return int32((z*ny+y)*nx + x) }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				row := int(idx(x, y, z))
				cols := make([]int32, 0, 27)
				vals := make([]float64, 0, 27)
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							cx, cy, cz := x+dx, y+dy, z+dz
							if cx < 0 || cx >= nx || cy < 0 || cy >= ny || cz < 0 || cz >= nz {
								continue
							}
							c := idx(cx, cy, cz)
							if int(c) == row {
								cols = append(cols, c)
								vals = append(vals, 26)
								p.diag[row] = 26
							} else {
								cols = append(cols, c)
								vals = append(vals, -1)
							}
						}
					}
				}
				p.cols[row] = cols
				p.vals[row] = vals
			}
		}
	}
	return p, nil
}

// SpMV computes y = A*x across the team (nil team runs serially).
func (p *Problem) SpMV(team *omp.Team, x, y []float64) {
	if len(x) != p.NRows || len(y) != p.NRows {
		panic("hpcg: SpMV dimension mismatch")
	}
	body := func(i int) {
		cols, vals := p.cols[i], p.vals[i]
		acc := 0.0
		for k, c := range cols {
			acc += vals[k] * x[c]
		}
		y[i] = acc
	}
	if team == nil {
		for i := 0; i < p.NRows; i++ {
			body(i)
		}
		return
	}
	team.ParallelFor(p.NRows, omp.Static, 0, body)
}

// SymGS performs one symmetric Gauss-Seidel sweep (forward then backward)
// on A*x = r, updating x in place. The dependency chain makes this kernel
// inherently sequential — exactly why the vanilla HPCG cannot use OpenMP,
// as the paper notes citing Ruiz et al.
func (p *Problem) SymGS(r, x []float64) {
	n := p.NRows
	for i := 0; i < n; i++ {
		p.gsRow(i, r, x)
	}
	for i := n - 1; i >= 0; i-- {
		p.gsRow(i, r, x)
	}
}

func (p *Problem) gsRow(i int, r, x []float64) {
	cols, vals := p.cols[i], p.vals[i]
	acc := r[i]
	for k, c := range cols {
		if int(c) != i {
			acc -= vals[k] * x[c]
		}
	}
	x[i] = acc / p.diag[i]
}

// Dot computes the dot product across the team.
func Dot(team *omp.Team, a, b []float64) float64 {
	if len(a) != len(b) {
		panic("hpcg: Dot dimension mismatch")
	}
	if team == nil {
		acc := 0.0
		for i := range a {
			acc += a[i] * b[i]
		}
		return acc
	}
	return team.ParallelReduce(len(a), func(i int) float64 { return a[i] * b[i] })
}

// WAXPBY computes w = alpha*x + beta*y.
func WAXPBY(team *omp.Team, alpha float64, x []float64, beta float64, y, w []float64) {
	body := func(i int) { w[i] = alpha*x[i] + beta*y[i] }
	if team == nil {
		for i := range w {
			body(i)
		}
		return
	}
	team.ParallelFor(len(w), omp.Static, 0, body)
}

// NonzerosPerRowMax is the stencil width.
const NonzerosPerRowMax = 27

// Nonzeros returns the total stored nonzeros.
func (p *Problem) Nonzeros() int {
	n := 0
	for _, c := range p.cols {
		n += len(c)
	}
	return n
}
