package hpcg

import (
	"math"
	"testing"

	"clustereval/internal/machine"
	"clustereval/internal/omp"
)

func TestProblemSymmetric(t *testing.T) {
	p, err := NewProblem(6, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Build a dense view and check A = A^T and row structure.
	n := p.NRows
	dense := make([][]float64, n)
	for i := range dense {
		dense[i] = make([]float64, n)
		for k, c := range p.cols[i] {
			dense[i][c] = p.vals[i][k]
		}
	}
	for i := 0; i < n; i++ {
		if dense[i][i] != 26 {
			t.Fatalf("diagonal (%d) = %v", i, dense[i][i])
		}
		for j := 0; j < n; j++ {
			if dense[i][j] != dense[j][i] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestProblemDiagonallyDominant(t *testing.T) {
	// 26 > 26 off-diagonals of -1 only for interior nodes, where the count
	// is exactly 26: weak dominance; boundary rows are strictly dominant.
	// This makes A SPD, which CG requires.
	p, _ := NewProblem(4, 4, 4)
	for i := 0; i < p.NRows; i++ {
		off := 0.0
		for k, c := range p.cols[i] {
			if int(c) != i {
				off += math.Abs(p.vals[i][k])
			}
		}
		if off > p.diag[i] {
			t.Fatalf("row %d not diagonally dominant: %v > %v", i, off, p.diag[i])
		}
	}
}

func TestInteriorRowHas27Nonzeros(t *testing.T) {
	p, _ := NewProblem(5, 5, 5)
	center := (2*5+2)*5 + 2
	if len(p.cols[center]) != 27 {
		t.Errorf("interior row has %d nonzeros, want 27", len(p.cols[center]))
	}
	if len(p.cols[0]) != 8 {
		t.Errorf("corner row has %d nonzeros, want 8", len(p.cols[0]))
	}
	if p.Nonzeros() <= 0 {
		t.Error("nonzero count")
	}
}

func TestNewProblemErrors(t *testing.T) {
	if _, err := NewProblem(0, 4, 4); err == nil {
		t.Error("zero dimension accepted")
	}
}

func TestSpMVAgainstDense(t *testing.T) {
	p, _ := NewProblem(3, 4, 2)
	n := p.NRows
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	y := make([]float64, n)
	p.SpMV(nil, x, y)
	// Dense reference.
	for i := 0; i < n; i++ {
		acc := 0.0
		for k, c := range p.cols[i] {
			acc += p.vals[i][k] * x[c]
		}
		if math.Abs(y[i]-acc) > 1e-14 {
			t.Fatalf("SpMV row %d: %v vs %v", i, y[i], acc)
		}
	}
}

func TestSpMVParallelMatchesSerial(t *testing.T) {
	team, err := omp.NewTeam(machine.CTEArm().Node, 8, omp.Spread)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProblem(8, 8, 8)
	x := make([]float64, p.NRows)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	ys := make([]float64, p.NRows)
	yp := make([]float64, p.NRows)
	p.SpMV(nil, x, ys)
	p.SpMV(team, x, yp)
	for i := range ys {
		if ys[i] != yp[i] {
			t.Fatalf("parallel SpMV differs at %d", i)
		}
	}
}

func TestSymGSReducesResidual(t *testing.T) {
	p, _ := NewProblem(6, 6, 6)
	n := p.NRows
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)
	residNorm := func() float64 {
		ax := make([]float64, n)
		p.SpMV(nil, x, ax)
		s := 0.0
		for i := range ax {
			d := b[i] - ax[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	r0 := residNorm()
	p.SymGS(b, x)
	r1 := residNorm()
	p.SymGS(b, x)
	r2 := residNorm()
	if !(r1 < r0 && r2 < r1) {
		t.Errorf("SymGS not contracting: %v -> %v -> %v", r0, r1, r2)
	}
}

func TestMGLevels(t *testing.T) {
	p, _ := NewProblem(16, 16, 16)
	mg, err := NewMG(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mg.Levels() != 4 {
		t.Errorf("levels = %d, want 4 (16 -> 8 -> 4 -> 2... stops at 4)", mg.Levels())
	}
	// Odd grids cannot coarsen.
	podd, _ := NewProblem(7, 7, 7)
	mgo, err := NewMG(podd, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mgo.Levels() != 1 {
		t.Errorf("odd grid levels = %d, want 1", mgo.Levels())
	}
	if _, err := NewMG(p, 0); err == nil {
		t.Error("zero levels accepted")
	}
}

func TestCGConverges(t *testing.T) {
	p, _ := NewProblem(16, 16, 16)
	mg, _ := NewMG(p, 3)
	b := make([]float64, p.NRows)
	for i := range b {
		b[i] = float64(i%3) + 1
	}
	x, res, err := CG(p, mg, nil, b, 50, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge in %d iterations; last residual %v",
			res.Iterations, res.Residuals[len(res.Residuals)-1])
	}
	// MG-preconditioned CG on this operator converges very fast.
	if res.Iterations > 25 {
		t.Errorf("CG took %d iterations, preconditioner ineffective", res.Iterations)
	}
	// Verify the solution satisfies the system.
	ax := make([]float64, p.NRows)
	p.SpMV(nil, x, ax)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-7 {
			t.Fatalf("solution wrong at %d: %v vs %v", i, ax[i], b[i])
		}
	}
}

func TestCGResidualDecreases(t *testing.T) {
	p, _ := NewProblem(8, 8, 8)
	mg, _ := NewMG(p, 2)
	b := make([]float64, p.NRows)
	for i := range b {
		b[i] = 1
	}
	_, res, err := CG(p, mg, nil, b, 20, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	// Overall decrease: final residual orders of magnitude below first.
	first := res.Residuals[0]
	last := res.Residuals[len(res.Residuals)-1]
	if last > 1e-6*first {
		t.Errorf("residual barely dropped: %v -> %v", first, last)
	}
}

func TestCGWithTeamMatches(t *testing.T) {
	team, _ := omp.NewTeam(machine.MareNostrum4().Node, 6, omp.Close)
	p, _ := NewProblem(8, 8, 8)
	mg, _ := NewMG(p, 2)
	b := make([]float64, p.NRows)
	for i := range b {
		b[i] = float64((i * 7) % 11)
	}
	xs, rs, err := CG(p, mg, nil, b, 30, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	xp, rp, err := CG(p, mg, team, b, 30, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Iterations != rp.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", rs.Iterations, rp.Iterations)
	}
	for i := range xs {
		if math.Abs(xs[i]-xp[i]) > 1e-9 {
			t.Fatalf("solutions differ at %d", i)
		}
	}
}

func TestCGErrors(t *testing.T) {
	p, _ := NewProblem(4, 4, 4)
	mg, _ := NewMG(p, 1)
	if _, _, err := CG(p, mg, nil, make([]float64, 3), 10, 1e-6); err == nil {
		t.Error("wrong rhs length accepted")
	}
	if _, _, err := CG(p, mg, nil, make([]float64, p.NRows), 0, 1e-6); err == nil {
		t.Error("zero iterations accepted")
	}
	// Zero rhs converges immediately.
	x, res, err := CG(p, mg, nil, make([]float64, p.NRows), 10, 1e-6)
	if err != nil || !res.Converged {
		t.Error("zero rhs should converge trivially")
	}
	for _, v := range x {
		if v != 0 {
			t.Error("zero rhs should give zero solution")
		}
	}
}

func TestFig7Anchors(t *testing.T) {
	arm, mn4 := machine.CTEArm(), machine.MareNostrum4()

	// CTE-Arm optimized: 2.91 % of peak at 1 node, 2.96 % at 192 (flat).
	r1, err := Predict(arm, Optimized, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.PercentOfPeak-2.91) > 0.1 {
		t.Errorf("CTE 1-node = %.2f%%, paper 2.91%%", r1.PercentOfPeak)
	}
	r192, _ := Predict(arm, Optimized, 192)
	if math.Abs(r192.PercentOfPeak-2.96) > 0.12 {
		t.Errorf("CTE 192-node = %.2f%%, paper 2.96%%", r192.PercentOfPeak)
	}
	// Both below Fugaku's 3.62 %.
	if r1.PercentOfPeak >= 3.62 || r192.PercentOfPeak >= 3.62 {
		t.Error("CTE-Arm should sit below Fugaku's 3.62%")
	}

	// Table IV HPCG row: speedups 2.50 (1 node) and 3.24 (192 nodes).
	m1, _ := Predict(mn4, Optimized, 1)
	if s := float64(r1.Perf) / float64(m1.Perf); math.Abs(s-2.50) > 0.08*2.50 {
		t.Errorf("1-node speedup = %.2f, paper 2.50", s)
	}
	m192, _ := Predict(mn4, Optimized, 192)
	if s := float64(r192.Perf) / float64(m192.Perf); math.Abs(s-3.24) > 0.08*3.24 {
		t.Errorf("192-node speedup = %.2f, paper 3.24", s)
	}
}

func TestVanillaBelowOptimized(t *testing.T) {
	for _, m := range []machine.Machine{machine.CTEArm(), machine.MareNostrum4()} {
		v, _ := Predict(m, Vanilla, 1)
		o, _ := Predict(m, Optimized, 1)
		if v.Perf >= o.Perf {
			t.Errorf("%s: vanilla %v not below optimized %v", m.Name, v.Perf, o.Perf)
		}
	}
	// The vanilla gap is much larger on CTE-Arm (Fujitsu compiler cannot
	// vectorize the reference loops).
	va, _ := Predict(machine.CTEArm(), Vanilla, 1)
	oa, _ := Predict(machine.CTEArm(), Optimized, 1)
	vm, _ := Predict(machine.MareNostrum4(), Vanilla, 1)
	om, _ := Predict(machine.MareNostrum4(), Optimized, 1)
	if float64(va.Perf)/float64(oa.Perf) >= float64(vm.Perf)/float64(om.Perf) {
		t.Error("vanilla/optimized gap should be wider on CTE-Arm")
	}
}

func TestFigure7Bars(t *testing.T) {
	runs, err := Figure7(machine.CTEArm(), machine.MareNostrum4())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 8 {
		t.Fatalf("%d bars, want 8", len(runs))
	}
	for _, r := range runs {
		if r.Perf <= 0 || r.PercentOfPeak <= 0 || r.PercentOfPeak > 100 {
			t.Errorf("degenerate bar %+v", r)
		}
	}
}

func TestPredictErrors(t *testing.T) {
	if _, err := Predict(machine.CTEArm(), Optimized, 0); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := Predict(machine.CTEArm(), Optimized, 1000); err == nil {
		t.Error("oversized accepted")
	}
}

func TestPaperParameters(t *testing.T) {
	p := PaperParameters(machine.CTEArm())
	if p.NX != 48 || p.NY != 88 || p.NZ != 88 || p.RuntimeSecs != 300 {
		t.Errorf("parameters = %+v", p)
	}
	if p.RanksPerNode != 48 {
		t.Errorf("ranks/node = %d, want 48 (MPI-only)", p.RanksPerNode)
	}
	if p.EnvVars["XOS_MMM_L_PAGING_POLICY"] != "demand:demand:demand" {
		t.Error("missing paging policy env var")
	}
	pm := PaperParameters(machine.MareNostrum4())
	if len(pm.EnvVars) != 0 {
		t.Error("MN4 needs no Fujitsu env vars")
	}
	if Vanilla.String() != "vanilla" || Optimized.String() != "optimized" {
		t.Error("version names")
	}
}
