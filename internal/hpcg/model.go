package hpcg

import (
	"fmt"
	"math"

	"clustereval/internal/machine"
	"clustereval/internal/units"
)

// Version selects which HPCG binary Fig. 7 reports.
type Version int

// The two versions the paper runs.
const (
	// Vanilla is the reference source compiled as-is (Fujitsu compiler on
	// CTE-Arm with the flags of Section IV-B, ICPC_MPI on MN4).
	Vanilla Version = iota
	// Optimized is the vendor-provided tuned binary.
	Optimized
)

func (v Version) String() string {
	if v == Vanilla {
		return "vanilla"
	}
	return "optimized"
}

// Effective traffic per flop of the optimized HPCG. The kernel's raw ratio
// is ~10.5 B/flop; caches cut the DRAM traffic by the fraction of the
// working set they can hold across MG levels. MareNostrum 4's 33 MB shared
// L3 plus 1 MB/core L2 retain roughly half the traffic; the A64FX has only
// 8 MB of L2 per CMG and no L3, retaining far less. These two constants
// reproduce the paper's one-node numbers: 98.3 GFlop/s (2.91 % of peak) on
// CTE-Arm and the 2.50x one-node speedup of Table IV.
const (
	bytesPerFlopA64FX   = 8.86
	bytesPerFlopSkylake = 5.145
)

// vanillaFactor is the fraction of the optimized throughput the reference
// source achieves (no architecture-specific SpMV/SymGS tuning, no
// contiguous-array layout): the gap Ruiz et al. analyse.
func vanillaFactor(kind machine.InterconnectKind) float64 {
	if kind == machine.TofuD {
		return 0.33 // Fujitsu compiler cannot vectorize the reference loops
	}
	return 0.75
}

// scaleOverhead is the per-doubling efficiency loss at scale: halo
// exchanges and the CG dot-product allreduce. TofuD offloads collectives to
// hardware, so CTE-Arm stays flat (2.91 % -> 2.96 % in the paper, i.e.
// within noise); OmniPath pays per allreduce.
func scaleOverhead(kind machine.InterconnectKind) float64 {
	if kind == machine.TofuD {
		return 0
	}
	return 0.0361
}

// Run is one bar of Fig. 7.
type Run struct {
	Machine       string
	Version       Version
	Nodes         int
	Perf          units.FlopsPerSecond
	Peak          units.FlopsPerSecond
	PercentOfPeak float64
}

// nodeStreamBW is the per-node sustainable bandwidth with the paper's
// MPI-only placement (one rank per core, memory local to each domain).
func nodeStreamBW(m machine.Machine) float64 {
	var sum float64
	for _, d := range m.Node.Domains {
		sum += float64(d.PeakBW) * d.StreamEff
	}
	return sum
}

// Predict models an HPCG run on `nodes` nodes: throughput is bandwidth
// divided by effective bytes-per-flop, times the version factor, times the
// network scale efficiency.
func Predict(m machine.Machine, v Version, nodes int) (Run, error) {
	if nodes <= 0 || nodes > m.Nodes {
		return Run{}, fmt.Errorf("hpcg: node count %d out of [1, %d]", nodes, m.Nodes)
	}
	bpf := bytesPerFlopSkylake
	if m.Network.Kind == machine.TofuD {
		bpf = bytesPerFlopA64FX
	}
	perNode := nodeStreamBW(m) / bpf
	if v == Vanilla {
		perNode *= vanillaFactor(m.Network.Kind)
	}
	scale := 1.0
	if nodes > 1 {
		scale = 1 / (1 + scaleOverhead(m.Network.Kind)*math.Log2(float64(nodes)))
	}
	perf := units.FlopsPerSecond(perNode * float64(nodes) * scale)
	peak := m.ClusterPeak(nodes)
	return Run{
		Machine: m.Name, Version: v, Nodes: nodes,
		Perf: perf, Peak: peak,
		PercentOfPeak: units.Percent(float64(perf), float64(peak)),
	}, nil
}

// Figure7 produces the eight bars of Fig. 7: {vanilla, optimized} x
// {1 node, 192 nodes} x {CTE-Arm, MareNostrum 4}.
func Figure7(arm, mn4 machine.Machine) ([]Run, error) {
	var runs []Run
	for _, nodes := range []int{1, 192} {
		for _, m := range []machine.Machine{arm, mn4} {
			for _, v := range []Version{Vanilla, Optimized} {
				r, err := Predict(m, v, nodes)
				if err != nil {
					return nil, err
				}
				runs = append(runs, r)
			}
		}
	}
	return runs, nil
}

// RunParameters documents the paper's execution setup (Section IV-B).
type RunParameters struct {
	NX, NY, NZ   int
	RuntimeSecs  int
	RanksPerNode int
	EnvVars      map[string]string
}

// PaperParameters returns the exact parameters of the paper's runs.
func PaperParameters(m machine.Machine) RunParameters {
	p := RunParameters{
		NX: 48, NY: 88, NZ: 88,
		RuntimeSecs:  300,
		RanksPerNode: m.Node.Cores(), // MPI-only, one rank per core
		EnvVars:      map[string]string{},
	}
	if m.Network.Kind == machine.TofuD {
		p.EnvVars["FLIB_FASTOMP"] = "TRUE"
		p.EnvVars["FLIB_HPCFUNC"] = "TRUE"
		p.EnvVars["XOS_MMM_L_PAGING_POLICY"] = "demand:demand:demand"
	}
	return p
}
