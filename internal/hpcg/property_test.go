package hpcg

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: the operator is symmetric positive definite for every grid
// shape — x^T A x > 0 for random non-zero x.
func TestOperatorSPDProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30}
	f := func(nx, ny, nz uint8, seed int64) bool {
		p, err := NewProblem(int(nx%6)+2, int(ny%6)+2, int(nz%6)+2)
		if err != nil {
			return false
		}
		x := make([]float64, p.NRows)
		s := seed
		nonzero := false
		for i := range x {
			s = s*6364136223846793005 + 1442695040888963407
			x[i] = float64(s%17) / 8
			if x[i] != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			x[0] = 1
		}
		ax := make([]float64, p.NRows)
		p.SpMV(nil, x, ax)
		quad := 0.0
		for i := range x {
			quad += x[i] * ax[i]
		}
		return quad > 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: CG converges on every even grid and the solution satisfies the
// system to engineering accuracy.
func TestCGConvergesProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 12}
	f := func(nRaw uint8, rhsSeed uint8) bool {
		n := (int(nRaw%3) + 2) * 2 // 4, 6, 8
		p, err := NewProblem(n, n, n)
		if err != nil {
			return false
		}
		mg, err := NewMG(p, 2)
		if err != nil {
			return false
		}
		b := make([]float64, p.NRows)
		for i := range b {
			b[i] = float64((i*int(rhsSeed+1))%7) - 3
		}
		x, res, err := CG(p, mg, nil, b, 60, 1e-9)
		if err != nil || !res.Converged {
			return false
		}
		ax := make([]float64, p.NRows)
		p.SpMV(nil, x, ax)
		for i := range ax {
			if math.Abs(ax[i]-b[i]) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: SymGS is a contraction toward the solution from any starting
// residual on this operator.
func TestSymGSContractionProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20}
	f := func(seed uint8) bool {
		p, err := NewProblem(5, 5, 5)
		if err != nil {
			return false
		}
		n := p.NRows
		b := make([]float64, n)
		x := make([]float64, n)
		for i := range b {
			b[i] = float64((i+int(seed))%9) - 4
		}
		norm := func() float64 {
			ax := make([]float64, n)
			p.SpMV(nil, x, ax)
			s := 0.0
			for i := range ax {
				d := b[i] - ax[i]
				s += d * d
			}
			return math.Sqrt(s)
		}
		before := norm()
		p.SymGS(b, x)
		after := norm()
		return after <= before
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
