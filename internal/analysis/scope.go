package analysis

import "strings"

// ModulePath is the import-path prefix of the repository this suite
// self-hosts in. Analyzers scope themselves to directories *relative* to
// the module root ("internal/mpisim", not "clustereval/internal/mpisim")
// so that analysistest fixtures — whose synthetic import paths have no
// module prefix — exercise exactly the production scoping logic.
const ModulePath = "clustereval"

// SimPackages are the packages whose results feed the paper's golden
// CSVs: everything here must be bit-reproducible from a seed. The
// determinism analyzer forbids wall-clock and global-PRNG use in them.
var SimPackages = []string{
	"internal/des",
	"internal/mpisim",
	"internal/memsim",
	"internal/interconnect",
	"internal/faultsim",
	"internal/experiment",
	"internal/machine",
	"internal/topology",
	"internal/hpl",
	"internal/hpcg",
	"internal/apps",
	"internal/bench",
	// Fleet coordination and load generation are not seed-reproducible
	// simulations, but they must stay testable under fake clocks: every
	// wall-clock read goes through an injectable binding (hostNow,
	// Limiter.now), which is exactly what the determinism analyzer
	// enforces.
	"internal/fleet",
	"internal/loadgen",
}

// CtxPackages are the packages on the deadline-abort chain: clusterd's
// per-job deadlines cancel a simulation mid-run only if every Run*/
// Measure* entry point on the way accepts and forwards a context.
// internal/bench/stream and /fpu are excluded: their Run* functions
// execute real host kernels whose inner loops are not abortable.
var CtxPackages = []string{
	"internal/des",
	"internal/mpisim",
	"internal/memsim",
	"internal/interconnect",
	"internal/faultsim",
	"internal/experiment",
	"internal/machine",
	"internal/topology",
	"internal/hpl",
	"internal/hpcg",
	"internal/apps",
	"internal/bench/osu",
	// The coordinator's probe loop and the load generator's run loop are
	// both long-running: their exported entry points must accept and
	// honor a context so shutdown and deadlines propagate fleet-wide.
	"internal/fleet",
	"internal/loadgen",
}

// CanonPackages are the packages that produce canonical byte streams:
// cache keys, journal records, and the fault-spec canonicalization they
// hash. The canonkey analyzer enforces sorted iteration and fixed-width
// encoding inside their canonicalization functions.
var CanonPackages = []string{
	"internal/experiment",
	"internal/faultsim",
	"internal/journal",
	"internal/service",
}

// WrapPackages are the packages whose errors cross package boundaries
// behind sentinel checks (errors.Is(err, journal.ErrCorrupt), service's
// typed overload errors): fmt.Errorf there must wrap with %w.
var WrapPackages = []string{
	"internal/service",
	"internal/journal",
}

// UnitsPackage is the home of the typed quantities (Seconds, Bytes,
// BytesPerSecond, FlopsPerSecond) whose arithmetic unitsafe polices.
const UnitsPackage = "internal/units"

// LockPackages are the packages whose mutex discipline lockorder
// enforces: the fleet coordinator/supervisor, the service's queue and
// metrics registry, and the journal — the code where an inconsistent
// lock-pair ordering or a lock held across a blocking channel op or
// journal fsync turns "heavy traffic" into a fleet-wide stall.
var LockPackages = []string{
	"internal/fleet",
	"internal/service",
	"internal/journal",
}

// GoroPackages are the packages where goroleak polices `go` statements:
// long-lived concurrent machinery (supervisor restart loops, replica
// ingest streams, pooled DES procs, loadgen workers, daemon mains)
// where a goroutine with no cancellation path outlives its owner.
var GoroPackages = []string{
	"internal/des",
	"internal/fleet",
	"internal/service",
	"internal/journal",
	"internal/loadgen",
	"internal/omp",
	"internal/experiment/cli",
	"cmd",
}

// RelPkgPath maps an import path onto its module-relative form:
// "clustereval/internal/hpl" and the fixture path "internal/hpl" both
// yield ("internal/hpl", true). Paths outside the module — stdlib,
// other modules — yield ok=false, which analyzers treat as out of scope.
func RelPkgPath(pkgPath string) (rel string, ok bool) {
	if pkgPath == ModulePath {
		return "", true
	}
	if rest, found := strings.CutPrefix(pkgPath, ModulePath+"/"); found {
		return rest, true
	}
	if strings.HasPrefix(pkgPath, "internal/") {
		// Fixture packages in analysistest use module-relative paths
		// directly.
		return pkgPath, true
	}
	return "", false
}

// UnderAny reports whether the module-relative path rel is one of the
// prefixes or nested beneath one.
func UnderAny(rel string, prefixes []string) bool {
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// InScope combines RelPkgPath and UnderAny for the common analyzer
// prologue.
func InScope(pkgPath string, prefixes []string) bool {
	rel, ok := RelPkgPath(pkgPath)
	return ok && UnderAny(rel, prefixes)
}
