package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// The facts engine: cross-function, cross-package analysis state,
// mirroring golang.org/x/tools/go/analysis Facts on this module's
// stdlib-only substrate.
//
// An analyzer that needs to see through a call — "does this function
// acquire a lock?", "does this return value derive from the wall
// clock?" — computes a summary while analyzing the defining package and
// exports it as a Fact attached to the function (or field, or package).
// Packages are analyzed bottom-up (go vet schedules dependency vets
// before dependents; analysistest loads fixture imports recursively), so
// by the time a caller is analyzed, every in-module callee's facts are
// already available. Between vettool invocations facts travel through
// the vetx files of the `go vet` unit-checker protocol, gob-encoded;
// within one analysistest run they stay in a shared in-memory FactDB.
//
// Restrictions relative to x/tools, chosen to keep the engine small:
// facts may only be exported about the package currently under analysis
// (its objects, its fields, the package itself), and fact types must be
// pointers to gob-encodable structs registered via Analyzer.FactTypes.

// Fact is an arbitrary datum attached to an object or package by one
// analyzer and visible to later runs of the *same* analyzer on
// dependent packages. Implementations must be pointers to structs with
// exported fields (they cross process boundaries via encoding/gob).
type Fact interface{ AFact() }

// ObjectKey derives the stable cross-process identity of a
// package-level object: "Name" for functions, types, consts and vars;
// "Recv.Name" for methods (pointer receivers fold onto their element
// type). Objects with no stable path — locals, closure temporaries,
// interface method instantiations without a named receiver — yield
// ok=false and cannot carry facts.
func ObjectKey(obj types.Object) (key string, ok bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	switch o := obj.(type) {
	case *types.Func:
		sig, isSig := o.Type().(*types.Signature)
		if isSig && sig.Recv() != nil {
			named := namedRecv(sig.Recv().Type())
			if named == nil {
				return "", false
			}
			return named.Obj().Name() + "." + o.Name(), true
		}
		return o.Name(), true
	case *types.TypeName, *types.Const:
		return obj.Name(), true
	case *types.Var:
		if o.IsField() {
			return "", false // fields carry facts via explicit FieldKey
		}
		if o.Pkg().Scope() == o.Parent() {
			return o.Name(), true
		}
		return "", false
	}
	return "", false
}

// FieldKey is the fact key of a struct field: "Type.field". Analyzers
// compute it from the named type they resolved at the access site
// (struct-field objects do not link back to their named type, so the
// generic ObjectKey cannot).
func FieldKey(typeName, field string) string { return typeName + "." + field }

// namedRecv unwraps a method receiver type to its *types.Named.
func namedRecv(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// factKey locates one fact: (analyzer, package, object-or-"", concrete
// fact type). The fact type is part of the key so one analyzer can
// attach several independent facts to the same object.
type factKey struct {
	analyzer string
	pkg      string
	obj      string // "" = package-level fact
	typ      string
}

// FactDB is the shared store one driver run (vetdriver invocation or
// analysistest Run) accumulates facts into.
type FactDB struct {
	m map[factKey]Fact
}

// NewFactDB returns an empty store.
func NewFactDB() *FactDB { return &FactDB{m: map[factKey]Fact{}} }

func factType(f Fact) string { return reflect.TypeOf(f).String() }

func (db *FactDB) set(analyzer, pkg, obj string, f Fact) {
	db.m[factKey{analyzer, pkg, obj, factType(f)}] = f
}

// get copies the stored fact into dst (a pointer to the same concrete
// struct type) and reports whether one was found.
func (db *FactDB) get(analyzer, pkg, obj string, dst Fact) bool {
	stored, ok := db.m[factKey{analyzer, pkg, obj, factType(dst)}]
	if !ok {
		return false
	}
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// PackageFact pairs a package path with one of its package-level facts,
// for analyzers that merge state across every dependency (lockorder's
// edge graph).
type PackageFact struct {
	Path string
	Fact Fact
}

// allPackageFacts lists every package-level fact of prototype's type
// exported by analyzer, sorted by package path for deterministic
// iteration.
func (db *FactDB) allPackageFacts(analyzer string, prototype Fact) []PackageFact {
	typ := factType(prototype)
	var out []PackageFact
	for k, f := range db.m {
		if k.analyzer == analyzer && k.obj == "" && k.typ == typ {
			out = append(out, PackageFact{Path: k.pkg, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// wireFact is the serialized form: the vetx file of package P holds the
// facts exported while analyzing P, so the package path stays implicit.
type wireFact struct {
	Analyzer string
	Obj      string
	Fact     Fact
}

// RegisterFactTypes makes every analyzer's fact prototypes known to gob.
// Drivers call it once before encoding or decoding vetx payloads.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// EncodeFacts serializes every fact the DB holds about pkg (the package
// just analyzed) into a vetx payload.
func (db *FactDB) EncodeFacts(pkg string) ([]byte, error) {
	var wire []wireFact
	for k, f := range db.m {
		if k.pkg == pkg {
			wire = append(wire, wireFact{Analyzer: k.analyzer, Obj: k.obj, Fact: f})
		}
	}
	sort.Slice(wire, func(i, j int) bool {
		a, b := wire[i], wire[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return factType(a.Fact) < factType(b.Fact)
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("encoding facts for %s: %w", pkg, err)
	}
	return buf.Bytes(), nil
}

// DecodeFacts merges a vetx payload previously written for pkg into the
// DB. Empty payloads (fact-free dependencies, pre-facts vetx files) are
// valid and contribute nothing.
func (db *FactDB) DecodeFacts(pkg string, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var wire []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return fmt.Errorf("decoding facts of %s: %w", pkg, err)
	}
	for _, w := range wire {
		db.set(w.Analyzer, pkg, w.Obj, w.Fact)
	}
	return nil
}

// --- Pass-level API (what analyzers actually call) ---

// ExportObjectFact attaches fact to obj, which must belong to the
// package under analysis and have a stable key. Exports about foreign
// or keyless objects are dropped — analyzers treat facts as best-effort
// summaries, never as load-bearing soundness.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil || obj == nil || obj.Pkg() == nil || obj.Pkg() != p.Pkg {
		return
	}
	key, ok := ObjectKey(obj)
	if !ok {
		return
	}
	p.facts.set(p.Analyzer.Name, p.Pkg.Path(), key, fact)
}

// ImportObjectFact copies the fact previously exported about obj (by
// this analyzer, in obj's defining package) into fact, reporting
// whether one exists.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	key, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	return p.facts.get(p.Analyzer.Name, obj.Pkg().Path(), key, fact)
}

// ExportFactByKey attaches a fact to an explicitly keyed member of the
// current package (struct fields, via FieldKey).
func (p *Pass) ExportFactByKey(key string, fact Fact) {
	if p.facts == nil || key == "" {
		return
	}
	p.facts.set(p.Analyzer.Name, p.Pkg.Path(), key, fact)
}

// ImportFactByKey looks up an explicitly keyed fact in pkgPath.
func (p *Pass) ImportFactByKey(pkgPath, key string, fact Fact) bool {
	if p.facts == nil || key == "" {
		return false
	}
	return p.facts.get(p.Analyzer.Name, pkgPath, key, fact)
}

// ExportPackageFact attaches a fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if p.facts == nil {
		return
	}
	p.facts.set(p.Analyzer.Name, p.Pkg.Path(), "", fact)
}

// ImportPackageFact copies pkgPath's package-level fact into fact.
func (p *Pass) ImportPackageFact(pkgPath string, fact Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.get(p.Analyzer.Name, pkgPath, "", fact)
}

// AllPackageFacts lists this analyzer's package-level facts of
// prototype's type across every package analyzed or decoded so far
// (including the current one), sorted by package path.
func (p *Pass) AllPackageFacts(prototype Fact) []PackageFact {
	if p.facts == nil {
		return nil
	}
	return p.facts.allPackageFacts(p.Analyzer.Name, prototype)
}
