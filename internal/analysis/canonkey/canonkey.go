// Package canonkey polices the byte stability of canonical encodings:
// experiment cache keys and journal records must stay byte-identical
// across refactors, or every cached result and every recoverable journal
// silently invalidates (PR 4's registry refactor nearly did exactly
// that). Functions that produce those bytes must iterate deterministically
// and encode floats at full, fixed width.
package canonkey

import (
	"go/ast"
	"go/types"
	"regexp"

	"clustereval/internal/analysis"
)

// Analyzer checks canonicalization functions in analysis.CanonPackages.
var Analyzer = &analysis.Analyzer{
	Name: "canonkey",
	Doc: `keep cache keys and journal records byte-stable

Inside the packages that produce canonical bytes (internal/experiment,
internal/faultsim, internal/journal, internal/service), any function
whose name marks it as part of an encoding path — Canonicalize,
Normalize, *Key, *Hash, encode*, Fingerprint* and friends — must not:

  - range over a map (iteration order is randomized; collect and sort
    the keys first, as Model.FailedNodes does);
  - format a float with %v or %g (the rendering is
    shortest-representation, which changes bytes when a refactor changes
    intermediate rounding; use strconv.FormatFloat with an explicit
    precision, JSON encoding of a struct field, or an integer encoding).

The golden fixtures in internal/experiment/testdata/cachekeys.json pin
the resulting bytes; this analyzer catches the regression before the
goldens do, with a useful position.`,
	Run: run,
}

// canonName marks functions on a canonical-encoding path by name.
var canonName = regexp.MustCompile(`(?i)(canonic|normali[sz]e|cache[_]?key|speckey|fingerprint|hash|encode)`)

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), analysis.CanonPackages) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !canonName.MatchString(fn.Name.Name) {
				continue
			}
			checkCanonFunc(pass, fn)
		}
	}
	return nil
}

func checkCanonFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if pass.IsMapType(n.X) && !collectOnly(pass, n.Body) {
				pass.Reportf(n.Pos(),
					"%s ranges over a map: canonical encodings must iterate in sorted order or the emitted bytes change run to run",
					fn.Name.Name)
			}
		case *ast.CallExpr:
			checkFloatVerb(pass, fn.Name.Name, n)
		}
		return true
	})
}

// collectOnly reports whether a map-range body merely gathers values
// (builtins like append, plus type conversions) — the first half of the
// sanctioned collect-then-sort idiom. Any other call could observe the
// random iteration order.
func collectOnly(pass *analysis.Pass, body *ast.BlockStmt) bool {
	ok := true
	ast.Inspect(body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || !ok {
			return ok
		}
		var id *ast.Ident
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			ok = false
			return false
		}
		switch pass.TypesInfo.Uses[id].(type) {
		case *types.Builtin, *types.TypeName:
			return true
		}
		ok = false
		return false
	})
	return ok
}

// checkFloatVerb flags %v / %g verbs whose corresponding argument is a
// float: shortest-representation float rendering is not a stable
// canonical encoding.
func checkFloatVerb(pass *analysis.Pass, funcName string, call *ast.CallExpr) {
	fn := pass.PkgFunc(call)
	if fn == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	fmtArg, ok := analysis.FormatCallArg[fn.Name()]
	if !ok {
		return
	}
	format, args, ok := analysis.FormatLiteral(call, fmtArg)
	if !ok {
		return
	}
	for _, v := range analysis.ParseVerbs(format) {
		if v.Verb != 'v' && v.Verb != 'g' {
			continue
		}
		if v.ArgIndex >= len(args) {
			continue
		}
		if isFloat(pass.TypesInfo.TypeOf(args[v.ArgIndex])) {
			pass.Reportf(args[v.ArgIndex].Pos(),
				"%s formats a float with %%%c: use a fixed-width encoding (strconv.FormatFloat or struct JSON) so canonical bytes survive refactors",
				funcName, v.Verb)
		}
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
