package experiment

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// CanonicalKey is on the encoding path by name, and does everything
// wrong: unsorted map iteration and shortest-representation floats.
func CanonicalKey(params map[string]float64) string {
	var b strings.Builder
	for k, v := range params { // want `CanonicalKey ranges over a map`
		fmt.Fprintf(&b, "%s=%v;", k, v) // want `CanonicalKey formats a float with %v`
	}
	return b.String()
}

// CanonicalKeySorted is the sanctioned shape: collect, sort, emit with a
// fixed-width float encoding.
func CanonicalKeySorted(params map[string]float64) string {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(params[k], 'g', 17, 64))
		b.WriteByte(';')
	}
	return b.String()
}

// normalizeWeights shows the %g variant of the float finding.
func normalizeWeights(total float64) string {
	return fmt.Sprintf("total=%g", total) // want `normalizeWeights formats a float with %g`
}

// debugDump is not canon-named, so its map range is the determinism
// analyzer's business, not canonkey's.
func debugDump(params map[string]float64) {
	for k, v := range params {
		fmt.Println(k, v)
	}
}

// encodeLegacy demonstrates a justified suppression.
func encodeLegacy(params map[string]string) string {
	var b strings.Builder
	//lint:allow canonkey keys are single-element maps in the legacy path
	for k, v := range params {
		b.WriteString(k + "=" + v)
	}
	return b.String()
}
