package canonkey_test

import (
	"testing"

	"clustereval/internal/analysis/analysistest"
	"clustereval/internal/analysis/canonkey"
)

func TestCanonkey(t *testing.T) {
	analysistest.Run(t, canonkey.Analyzer, "internal/experiment")
}
