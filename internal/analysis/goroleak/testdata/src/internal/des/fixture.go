// Fixture: spawn targets defined in another package. Spin has no exit
// path; Pump is bounded by an owned-channel range. Their ExitFact facts
// are what the fleet fixture's cross-package spawns are judged by.
package des

// Spin loops forever with no cancellation path.
func Spin() {
	for {
		step()
	}
}

// Pump drains an owned channel: it exits when the owner closes ch.
func Pump(ch chan int) {
	for v := range ch {
		_ = v
	}
}

func step() {}
