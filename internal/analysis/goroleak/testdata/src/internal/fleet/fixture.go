// Fixture: the goroleak vocabulary — leaking closures, leaking named
// targets (same package and cross-package via facts), and every
// sanctioned exit-path shape as pinned non-reports.
package fleet

import (
	"context"
	"sync"

	"internal/des"
)

type coordinator struct {
	jobs chan int
	quit chan struct{}
	wg   sync.WaitGroup
}

// LeakClosure loops forever with nothing to stop it: reported.
func (c *coordinator) LeakClosure() {
	go func() { // want `goroutine has no reachable exit path`
		for {
			work()
		}
	}()
}

// LeakNamed spawns a same-package function with no exit path: reported
// through the local summary.
func (c *coordinator) LeakNamed() {
	go spinLocal() // want `goroutine runs spinLocal, which has no reachable exit path`
}

// LeakCrossPackage spawns a function in another package with no exit
// path: reported through the imported ExitFact.
func (c *coordinator) LeakCrossPackage() {
	go des.Spin() // want `goroutine runs Spin, which has no reachable exit path`
}

func spinLocal() {
	for {
		work()
	}
}

// CtxClosure selects on ctx.Done: bound.
func (c *coordinator) CtxClosure(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-c.jobs:
				_ = j
			}
		}
	}()
}

// CtxArg passes a context to the spawned function: bound regardless of
// the callee's body.
func (c *coordinator) CtxArg(ctx context.Context) {
	go runWith(ctx)
}

func runWith(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
	}
}

// WaitGrouped signals a WaitGroup: the owner waits for it; bound.
func (c *coordinator) WaitGrouped() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			if work() {
				return
			}
		}
	}()
}

// RangeOwned drains an owned channel; exits on close: bound.
func (c *coordinator) RangeOwned() {
	go func() {
		for j := range c.jobs {
			_ = j
		}
	}()
}

// CommaOk observes the channel close through a comma-ok receive: bound.
func (c *coordinator) CommaOk() {
	go func() {
		for {
			j, ok := <-c.jobs
			if !ok {
				return
			}
			_ = j
		}
	}()
}

// QuitChannel returns from a select receive case: bound.
func (c *coordinator) QuitChannel() {
	go func() {
		for {
			select {
			case <-c.quit:
				return
			case j := <-c.jobs:
				_ = j
			}
		}
	}()
}

// StraightLine has no loop: it ends when its blocking call returns
// (the one-shot completion-notifier idiom); a pinned non-report.
func (c *coordinator) StraightLine(errCh chan error) {
	go func() {
		errCh <- work2()
	}()
}

// CrossPackageBounded spawns a channel-bounded function from another
// package: bound through the imported ExitFact.
func (c *coordinator) CrossPackageBounded() {
	go des.Pump(c.jobs)
}

// FuncValue spawns through a function value the analyzer cannot see
// into: a pinned non-report (unknown targets stay quiet).
func (c *coordinator) FuncValue(f func()) {
	go f()
}

// Justified is a deliberate fire-and-forget with a written waiver.
func (c *coordinator) Justified() {
	//lint:allow goroleak lifetime intentionally process-long: the scavenger must outlive every coordinator
	go spinLocal()
}

func work() bool   { return true }
func work2() error { return nil }
