// Fixture: internal/report is outside analysis.GoroPackages — even a
// blatant leak is a pinned non-report there.
package report

func Leak() {
	go func() {
		for {
		}
	}()
}
