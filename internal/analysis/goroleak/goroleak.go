// Package goroleak requires every goroutine spawned in the concurrent
// machinery (supervisor restart loops, replica ingest streams, pooled
// DES procs, loadgen workers) to have a reachable exit path: a
// context.Context, a sync.WaitGroup, or an owned channel whose close
// terminates the loop. Named spawn targets are seen through via the
// facts engine, so `go s.worker()` is judged by worker's body wherever
// it is defined.
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"clustereval/internal/analysis"
)

// Analyzer flags `go` statements with no statically visible exit path
// in analysis.GoroPackages (non-test code).
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc: `require an exit path for every spawned goroutine

A goroutine that loops forever with no cancellation path outlives its
owner: the supervisor cannot drain it, tests leak it, and under heavy
traffic the fleet accumulates them until memory or the scheduler gives
out. Inside the concurrency packages this analyzer requires every
go statement in non-test code to spawn a function with at least one of:

  - a context.Context in reach (parameter, captured variable, or a
    select on ctx.Done());
  - a sync.WaitGroup Done call (the owner waits for it);
  - a loop bounded by an owned channel: range over a channel, a
    comma-ok receive, or a select case receive whose body returns;
  - no loop at all (a straight-line body ends when its calls return).

Named spawn targets are resolved through function facts, so the exit
path may live in the callee's body in another package. Spawns of
functions this module cannot see into (stdlib, function values) are not
reported. A genuinely fire-and-forget goroutine carries
'//lint:allow goroleak <justification>'.`,
	Run:       run,
	FactTypes: []analysis.Fact{&ExitFact{}},
}

// ExitFact records whether a function's body offers the spawned
// goroutine an exit path.
type ExitFact struct {
	Bound bool
}

// AFact marks ExitFact as a fact.
func (*ExitFact) AFact() {}

func run(pass *analysis.Pass) error {
	rel, inModule := analysis.RelPkgPath(pass.Pkg.Path())
	if !inModule {
		return nil
	}
	report := analysis.UnderAny(rel, analysis.GoroPackages)

	// Facts first (module-wide): every top-level function's exit
	// boundness, so spawns in dependent packages can see through calls.
	local := map[*types.Func]bool{}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			bound := hasCtxParam(fn) || exitBound(pass, fd.Body)
			local[fn] = bound
			pass.ExportObjectFact(fn, &ExitFact{Bound: bound})
		}
	}
	if !report {
		return nil
	}

	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGo(pass, g, local)
			return true
		})
	}
	return nil
}

// checkGo judges one `go` statement.
func checkGo(pass *analysis.Pass, g *ast.GoStmt, local map[*types.Func]bool) {
	// An argument of type context.Context ties the goroutine's life to
	// the caller's cancellation graph regardless of the callee.
	for _, arg := range g.Call.Args {
		if isContextType(pass.TypesInfo.TypeOf(arg)) {
			return
		}
	}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if litBound(pass, fun) {
			return
		}
		pass.Reportf(g.Pos(),
			"goroutine has no reachable exit path: tie it to a context.Context, a sync.WaitGroup, or an owned channel close (//lint:allow goroleak <why> if genuinely fire-and-forget)")
	default:
		fn := calleeFunc(pass, g.Call)
		if fn == nil {
			return // function value or builtin: cannot see inside, stay quiet
		}
		if bound, ok := local[fn]; ok {
			if !bound {
				reportNamed(pass, g, fn)
			}
			return
		}
		var fact ExitFact
		if pass.ImportObjectFact(fn, &fact) {
			if !fact.Bound {
				reportNamed(pass, g, fn)
			}
			return
		}
		// No fact: out-of-module (stdlib) target; stay quiet.
	}
}

func reportNamed(pass *analysis.Pass, g *ast.GoStmt, fn *types.Func) {
	pass.Reportf(g.Pos(),
		"goroutine runs %s, which has no reachable exit path: tie it to a context.Context, a sync.WaitGroup, or an owned channel close (//lint:allow goroleak <why> if genuinely fire-and-forget)",
		fn.Name())
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	if fn := pass.PkgFunc(call); fn != nil {
		return fn
	}
	return pass.MethodOf(call)
}

// litBound judges a spawned function literal: its own parameters count
// (the spawn site may pass a context positionally), then the body.
func litBound(pass *analysis.Pass, lit *ast.FuncLit) bool {
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			if isContextType(pass.TypesInfo.TypeOf(field.Type)) {
				return true
			}
		}
	}
	return exitBound(pass, lit.Body)
}

// exitBound reports whether body offers an exit path: a context in
// reach, a WaitGroup.Done, a channel-bounded loop, or no loop at all.
func exitBound(pass *analysis.Pass, body *ast.BlockStmt) bool {
	var (
		usesContext   bool
		waitGroupDone bool
		chanBounded   bool
		hasLoop       bool
	)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if isContextType(pass.TypesInfo.TypeOf(n)) {
				usesContext = true
			}
		case *ast.CallExpr:
			if fn := pass.MethodOf(n); fn != nil && fn.Name() == "Done" {
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
					if named := analysis.NamedType(recv.Type()); named != nil &&
						named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" &&
						named.Obj().Name() == "WaitGroup" {
						waitGroupDone = true
					}
				}
			}
		case *ast.ForStmt:
			hasLoop = true
		case *ast.RangeStmt:
			hasLoop = true
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					chanBounded = true // terminates when the owner closes the channel
				}
			}
		case *ast.AssignStmt:
			// v, ok := <-ch: the loop observes the channel close.
			if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
				if u, isRecv := ast.Unparen(n.Rhs[0]).(*ast.UnaryExpr); isRecv && u.Op == token.ARROW {
					chanBounded = true
				}
			}
		case *ast.SelectStmt:
			// A select case that receives and then returns/breaks is a
			// quit-channel exit.
			for _, clause := range n.Body.List {
				cc, isComm := clause.(*ast.CommClause)
				if !isComm || cc.Comm == nil {
					continue
				}
				if commReceives(cc.Comm) && bodyEscapes(cc.Body) {
					chanBounded = true
				}
			}
		}
		return true
	})
	return usesContext || waitGroupDone || chanBounded || !hasLoop
}

// commReceives reports whether a select comm clause is a receive.
func commReceives(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		u, ok := ast.Unparen(s.X).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr)
			return ok && u.Op == token.ARROW
		}
	}
	return false
}

// bodyEscapes reports whether stmts contain a return or break at the
// top level of the clause body.
func bodyEscapes(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.BranchStmt:
			if s.Tok == token.BREAK {
				return true
			}
		}
	}
	return false
}

func hasCtxParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named := analysis.NamedType(t)
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}
