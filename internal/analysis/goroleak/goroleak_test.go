package goroleak_test

import (
	"testing"

	"clustereval/internal/analysis/analysistest"
	"clustereval/internal/analysis/goroleak"
)

func Test(t *testing.T) {
	analysistest.Run(t, goroleak.Analyzer,
		"internal/des",
		"internal/fleet",
		"internal/report",
	)
}
