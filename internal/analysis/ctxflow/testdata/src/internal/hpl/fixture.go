package hpl

import "context"

// RunContext is the canonical shape: ctx first, and actually used.
func RunContext(ctx context.Context, n int) error {
	return ctx.Err()
}

// Run is the sanctioned convenience wrapper: no context of its own, but
// it delegates to the *Context variant.
func Run(n int) error {
	return RunContext(context.Background(), n)
}

func RunBare(n int) error { // want `exported RunBare must accept a context\.Context`
	return nil
}

func MeasureBare(sizes []int) error { // want `exported MeasureBare must accept a context\.Context`
	return nil
}

func RunIgnored(ctx context.Context, n int) error { // want `accepts a context but never forwards or checks it`
	return nil
}

func RunDiscarded(_ context.Context, n int) error { // want `accepts a context but never forwards or checks it`
	return nil
}

func RunMisplaced(n int, ctx context.Context) error { // want `context\.Context must be the first parameter`
	return ctx.Err()
}

//lint:allow ctxflow drives a host kernel whose inner loop cannot be aborted
func RunWaived(n int) error {
	return nil
}

// runLocal is unexported: the deadline chain only constrains the
// package's public surface.
func runLocal(n int) error {
	return nil
}

type Solver struct{}

// RunSolve: methods are entry points too.
func (s *Solver) RunSolve(ctx context.Context) error {
	return ctx.Err()
}

func (s *Solver) RunSolveBare() error { // want `exported RunSolveBare must accept a context\.Context`
	return nil
}
