// Package ctxflow enforces the deadline-abort chain: clusterd's per-job
// deadlines can only cut a simulation short if every Run*/Measure* entry
// point between the service and the discrete-event engine accepts and
// forwards a context.Context.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"clustereval/internal/analysis"
)

// Analyzer checks exported Run*/Measure* functions in
// analysis.CtxPackages.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: `require context propagation through simulation entry points

Every exported function or method named Run* or Measure* in a simulation
package must either

  - accept a context.Context as its first parameter and actually use it
    (a parameter named _ or never referenced silently breaks the chain), or
  - be a convenience wrapper whose body delegates to a *Context variant
    (the established Run/RunContext pattern).

This is what keeps clusterd's deadline_ms able to abort a simulation
between DES events; see des.Engine.RunContext -> mpisim.World.RunContext
-> osu.MeasurePairContext.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), analysis.CtxPackages) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			name := fn.Name.Name
			if !strings.HasPrefix(name, "Run") && !strings.HasPrefix(name, "Measure") {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	ctxParam, index := contextParam(pass, fn)
	if index < 0 {
		if delegatesToContextVariant(fn.Body) {
			return // Run() { return RunContext(context.Background(), ...) }
		}
		pass.Reportf(fn.Pos(),
			"exported %s must accept a context.Context (or delegate to a *Context variant) so job deadlines can abort it",
			fn.Name.Name)
		return
	}
	if index != 0 {
		pass.Reportf(ctxParam.Pos(),
			"%s: context.Context must be the first parameter", fn.Name.Name)
	}
	if ctxParam.Name == "_" || !identUsed(pass, fn.Body, ctxParam) {
		pass.Reportf(ctxParam.Pos(),
			"%s accepts a context but never forwards or checks it, which silently breaks deadline propagation",
			fn.Name.Name)
	}
}

// contextParam returns the identifier of the first context.Context
// parameter and its position in the flattened parameter list; index is
// -1 when there is none. An unnamed context parameter reports as "_"
// anchored at the type expression.
func contextParam(pass *analysis.Pass, fn *ast.FuncDecl) (*ast.Ident, int) {
	index := 0
	for _, field := range fn.Type.Params.List {
		isCtx := isContextType(pass.TypesInfo.TypeOf(field.Type))
		if len(field.Names) == 0 {
			if isCtx {
				unnamed := ast.NewIdent("_")
				unnamed.NamePos = field.Type.Pos()
				return unnamed, index
			}
			index++
			continue
		}
		for _, name := range field.Names {
			if isCtx {
				return name, index
			}
			index++
		}
	}
	return nil, -1
}

func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// delegatesToContextVariant reports whether the body calls any function
// or method whose name ends in "Context" — the conventional shape of a
// background-context convenience wrapper.
func delegatesToContextVariant(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if strings.HasSuffix(analysis.CalleeName(call), "Context") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// identUsed reports whether the object bound to def is referenced
// anywhere in body.
func identUsed(pass *analysis.Pass, body *ast.BlockStmt, def *ast.Ident) bool {
	obj := pass.TypesInfo.Defs[def]
	if obj == nil {
		return false
	}
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
