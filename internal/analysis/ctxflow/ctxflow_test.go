package ctxflow_test

import (
	"testing"

	"clustereval/internal/analysis/analysistest"
	"clustereval/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "internal/hpl")
}
