package lockorder_test

import (
	"testing"

	"clustereval/internal/analysis/analysistest"
	"clustereval/internal/analysis/lockorder"
)

func Test(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer,
		"internal/journal",
		"internal/service",
		"internal/fleet",
		"internal/des",
	)
}
