// Fixture: the journal's own append serialization — fsync performed
// directly under the journal's own mutex — is the sanctioned idiom and
// must NOT be reported. The exported Summary fact (Append fsyncs) is
// what lets the service fixture's cross-package finding fire.
package journal

import (
	"os"
	"sync"
)

// fsync mirrors the production journal's injectable platter hook.
var fsync = func(f *os.File) error { return f.Sync() }

// Journal is a minimal stand-in for the production write-ahead journal.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// Append fsyncs under its own lock acquired in the same function: the
// owner's serialization idiom, a pinned non-report.
func (j *Journal) Append(rec []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(rec); err != nil {
		return err
	}
	return fsync(j.f)
}

// Sync fsyncs directly through the os.File method rather than the hook;
// also a non-report, and also exported as an fsyncing summary.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}
