// Fixture: cross-package fact flow. The journal fixture's Append/Sync
// summaries (they fsync) arrive as facts; holding a service lock across
// those calls is reported here, in the calling package.
package service

import (
	"sync"

	"internal/journal"
)

// Server is a minimal stand-in for the production service.
type Server struct {
	mu sync.Mutex
	j  *journal.Journal
	ch chan int
}

// Submit holds the server mutex across a call that fsyncs (one call
// deep, in another package): reported via the imported Summary fact.
func (s *Server) Submit(rec []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.Append(rec) // want `call to Append while holding lock internal/service\.Server\.mu: the callee fsyncs`
}

// SubmitUnlocked appends after releasing: no report.
func (s *Server) SubmitUnlocked(rec []byte) error {
	s.mu.Lock()
	s.mu.Unlock()
	return s.j.Append(rec)
}

// Notify sends on a channel while holding the mutex: reported.
func (s *Server) Notify() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send while holding lock internal/service\.Server\.mu`
	s.mu.Unlock()
}

// Wait receives while holding the mutex: reported.
func (s *Server) Wait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.ch // want `channel receive while holding lock internal/service\.Server\.mu`
}

// Drain ranges over a channel while holding the mutex: reported.
func (s *Server) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for range s.ch { // want `channel range receive while holding lock internal/service\.Server\.mu`
	}
}

// Pick selects while holding the mutex: reported.
func (s *Server) Pick(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `channel select while holding lock internal/service\.Server\.mu`
	case <-done:
	case v := <-s.ch:
		_ = v
	}
}

// NotifyAfter sends after the critical section: no report.
func (s *Server) NotifyAfter() {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1
}

// NotifyAsync spawns a goroutine from the critical section; the
// goroutine body runs under its own empty held set — a pinned
// non-report (the spawned send does not block the lock holder).
func (s *Server) NotifyAsync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1
	}()
}

// NotifyJustified carries a written waiver: the finding is suppressed.
func (s *Server) NotifyJustified() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:allow lockorder the channel is buffered with capacity for every waiter, so the send cannot block
	s.ch <- 1
}
