// Fixture: internal/des is outside analysis.LockPackages — its facts
// are computed (callers in scoped packages can see through calls into
// it) but nothing here is ever reported, even a blatant
// channel-send-under-lock.
package des

import "sync"

type pool struct {
	mu sync.Mutex
	ch chan int
}

// sendLocked would be reported in a scoped package; here it is a pinned
// non-report because the package is out of scope.
func (p *pool) sendLocked() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ch <- 1
}
