// Fixture: lock-pair ordering, including an inversion reached only
// through a helper function (the cross-function mutex-acquisition
// graph), and the type-level-identity non-report for two instances of
// the same type.
package fleet

import "sync"

// Coordinator and shardState mirror the production fleet's two-level
// locking.
type Coordinator struct {
	mu sync.Mutex
}

type shardState struct {
	mu sync.Mutex
}

// lockPair takes coordinator-then-shard: this is the canonical order.
func lockPair(c *Coordinator, st *shardState) {
	c.mu.Lock()
	st.mu.Lock() // want `lock internal/fleet\.shardState\.mu acquired while holding internal/fleet\.Coordinator\.mu, but the opposite order is taken at .*fixture\.go`
	st.mu.Unlock()
	c.mu.Unlock()
}

// lockCoord acquires the coordinator lock; callers holding a shard lock
// create the inverted edge through this helper's Summary fact.
func lockCoord(c *Coordinator) {
	c.mu.Lock()
	c.mu.Unlock()
}

// invertedViaHelper holds shard-then-(coordinator via helper): the
// inversion is only visible through the cross-function graph.
func invertedViaHelper(c *Coordinator, st *shardState) {
	st.mu.Lock()
	lockCoord(c)
	st.mu.Unlock()
}

// twoShards locks two instances of the same type: identity is
// type-level, so the self-pair is deliberately not reported (a pinned
// non-report; instance aliasing is invisible to static analysis).
func twoShards(a, b *shardState) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}
