// Package lockorder builds a mutex-acquisition graph across function
// calls and packages (via the facts engine) and enforces the lock
// discipline of the fleet, service and journal packages: consistent
// lock-pair orderings, no locks held across blocking channel
// operations, and no locks held across calls that fsync a journal.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"clustereval/internal/analysis"
)

// Analyzer enforces mutex ordering and no-blocking-under-lock in
// analysis.LockPackages. Function summaries (which locks a function
// acquires, whether it fsyncs) are computed for every module package and
// exported as facts, so a caller sees through calls into other packages.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: `enforce mutex acquisition order and no-blocking-under-lock

The fleet coordinator, shard supervisor, service queue and journal are
the hot concurrent machinery under heavy traffic; this analyzer reports,
inside internal/fleet, internal/service and internal/journal:

  - acquiring lock B while holding lock A when somewhere else (any
    function, any of the three packages) B is held while acquiring A: an
    inconsistent lock-pair ordering is one unlucky interleaving away
    from deadlock;
  - a blocking channel operation (send, receive, select, range over a
    channel) while holding a mutex: the channel's peer may need the same
    mutex to make progress;
  - calling a function that (transitively, through any call depth and
    across packages) fsyncs — journal.Append and friends — while
    holding a mutex: the lock serializes on platter latency and every
    waiter stalls for milliseconds.

A function fsyncing under its *own* mutex acquired in the same function
(the journal's append serialization) is the sanctioned idiom and is not
reported; only an outer lock held across a call into fsyncing code is.
Lock identity is type-level ("fleet.shardState.mu"), so two instances of
the same type alias onto one identity: self-pairs (A,A) are skipped.
Genuine can't-fix sites carry '//lint:allow lockorder <justification>'.`,
	Run:       run,
	FactTypes: []analysis.Fact{&Summary{}, &Edges{}},
}

// Summary is the per-function fact: the lock set the function (or any
// callee, transitively) acquires, and whether it fsyncs.
type Summary struct {
	Acquires []string
	Fsyncs   bool
}

// AFact marks Summary as a fact.
func (*Summary) AFact() {}

// Edge is one observed ordering: To was acquired while From was held.
// Where records the source position for cross-package diagnostics.
type Edge struct {
	From, To, Where string
}

// Edges is the per-package fact carrying every ordering edge observed in
// the package, so dependent packages can check their acquisitions
// against the whole graph below them.
type Edges struct {
	Edges []Edge
}

// AFact marks Edges as a fact.
func (*Edges) AFact() {}

// mutexMethods classifies the sync.Mutex/RWMutex method vocabulary.
var mutexMethods = map[string]int{
	"Lock": +1, "RLock": +1, "TryLock": +1, "TryRLock": +1,
	"Unlock": -1, "RUnlock": -1,
}

func run(pass *analysis.Pass) error {
	rel, inModule := analysis.RelPkgPath(pass.Pkg.Path())
	if !inModule {
		return nil
	}
	report := analysis.UnderAny(rel, analysis.LockPackages)

	a := &pkgAnalysis{
		pass:      pass,
		rel:       rel,
		summaries: map[*types.Func]*Summary{},
		callees:   map[*types.Func][]*types.Func{},
		edges:     map[[2]string]localEdge{},
	}

	// Phase A: direct summaries (locks acquired and fsyncs performed in
	// the function body itself) plus the intra-package call graph.
	decls := a.collectFuncs()
	for _, d := range decls {
		a.directSummary(d)
	}
	// Phase B: propagate through same-package calls to a fixpoint, then
	// export. Cross-package callees resolve through facts inside
	// calleeSummary, which Phase A already consulted for direct edges —
	// their contribution is folded here too.
	a.propagate(decls)
	for fn, s := range a.summaries {
		sort.Strings(s.Acquires)
		pass.ExportObjectFact(fn, s)
	}
	// Phase C: re-walk with complete summaries, recording edges and (in
	// scope) diagnostics.
	a.reporting = report
	for _, d := range decls {
		a.checkFunc(d)
	}

	// Merge the edge graph below this package and flag local edges whose
	// reversal exists anywhere in it.
	a.exportAndCheckEdges(report)
	return nil
}

// pkgAnalysis carries one package through the three phases.
type pkgAnalysis struct {
	pass      *analysis.Pass
	rel       string
	reporting bool
	summaries map[*types.Func]*Summary
	callees   map[*types.Func][]*types.Func
	edges     map[[2]string]localEdge // local ordering edges, keyed (from, to)
}

// localEdge pairs an exported Edge with the token.Pos it was observed
// at, so ordering diagnostics anchor to real source positions.
type localEdge struct {
	Edge
	pos token.Pos
}

// collectFuncs lists the package's top-level function declarations with
// bodies, skipping test files (test-local lock use follows different
// idioms and is the race detector's turf).
func (a *pkgAnalysis) collectFuncs() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, file := range a.pass.Files {
		if a.pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

func (a *pkgAnalysis) funcObj(fd *ast.FuncDecl) *types.Func {
	fn, _ := a.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return fn
}

// directSummary records the locks fd acquires and fsyncs it performs
// directly, and its in-package callees.
func (a *pkgAnalysis) directSummary(fd *ast.FuncDecl) {
	fn := a.funcObj(fd)
	if fn == nil {
		return
	}
	s := &Summary{}
	a.summaries[fn] = s
	seen := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // closures are separate execution contexts
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, delta := a.mutexOp(call); delta > 0 && !seen[id] {
			seen[id] = true
			s.Acquires = append(s.Acquires, id)
		}
		if a.isDirectFsync(call) {
			s.Fsyncs = true
		}
		if callee := a.calleeFunc(call); callee != nil {
			if callee.Pkg() == a.pass.Pkg {
				a.callees[fn] = append(a.callees[fn], callee)
			} else if imported := a.importedSummary(callee); imported != nil {
				// Cross-package callee: fold its fact in now; it is
				// final (dependencies are analyzed bottom-up).
				s.Fsyncs = s.Fsyncs || imported.Fsyncs
				for _, l := range imported.Acquires {
					if !seen[l] {
						seen[l] = true
						s.Acquires = append(s.Acquires, l)
					}
				}
			}
		}
		return true
	})
}

// propagate folds same-package callee summaries in until nothing
// changes.
func (a *pkgAnalysis) propagate(decls []*ast.FuncDecl) {
	for changed := true; changed; {
		changed = false
		for fn, s := range a.summaries {
			for _, callee := range a.callees[fn] {
				cs := a.summaries[callee]
				if cs == nil {
					continue
				}
				if cs.Fsyncs && !s.Fsyncs {
					s.Fsyncs = true
					changed = true
				}
				for _, l := range cs.Acquires {
					if !contains(s.Acquires, l) {
						s.Acquires = append(s.Acquires, l)
						changed = true
					}
				}
			}
		}
	}
	_ = decls
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// calleeSummary resolves the full summary of a called function: local
// fixpoint result for same-package callees, imported fact otherwise.
func (a *pkgAnalysis) calleeSummary(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	if s, ok := a.summaries[fn]; ok {
		return s
	}
	return a.importedSummary(fn)
}

func (a *pkgAnalysis) importedSummary(fn *types.Func) *Summary {
	var s Summary
	if a.pass.ImportObjectFact(fn, &s) {
		return &s
	}
	return nil
}

// calleeFunc resolves a call to a package function or method (the two
// shapes facts can attach to).
func (a *pkgAnalysis) calleeFunc(call *ast.CallExpr) *types.Func {
	if fn := a.pass.PkgFunc(call); fn != nil {
		return fn
	}
	return a.pass.MethodOf(call)
}

// mutexOp classifies call as a sync mutex acquisition (+1) or release
// (-1) and returns the lock identity; delta 0 means not a mutex op.
func (a *pkgAnalysis) mutexOp(call *ast.CallExpr) (id string, delta int) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	fn, ok := a.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0
	}
	d, listed := mutexMethods[fn.Name()]
	if !listed {
		return "", 0
	}
	return a.lockID(sel.X), d
}

// lockID derives the type-level identity of the mutex value e.
func (a *pkgAnalysis) lockID(e ast.Expr) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		// v.mu — identity is the owner's named type plus field name.
		if named := analysis.NamedType(a.pass.TypesInfo.TypeOf(x.X)); named != nil && named.Obj().Pkg() != nil {
			return a.typeID(named) + "." + x.Sel.Name
		}
		// Anonymous-struct package var (des.workerPool style): var name
		// plus field name.
		if id, ok := x.X.(*ast.Ident); ok {
			return a.rel + "." + id.Name + "." + x.Sel.Name
		}
		return a.rel + ".<unknown>." + x.Sel.Name
	case *ast.Ident:
		obj := a.pass.TypesInfo.Uses[x]
		if obj == nil {
			return a.rel + "." + x.Name
		}
		// A receiver or value with an embedded Mutex: identity is the
		// named type itself.
		if named := analysis.NamedType(obj.Type()); named != nil && !isSyncType(named) && named.Obj().Pkg() != nil {
			return a.typeID(named)
		}
		if obj.Parent() == a.pass.Pkg.Scope() {
			return a.rel + "." + x.Name // package-level mutex var
		}
		return a.rel + ".local." + x.Name
	}
	return a.rel + ".<unknown>"
}

func (a *pkgAnalysis) typeID(named *types.Named) string {
	rel, ok := analysis.RelPkgPath(named.Obj().Pkg().Path())
	if !ok {
		rel = named.Obj().Pkg().Path()
	}
	return rel + "." + named.Obj().Name()
}

func isSyncType(named *types.Named) bool {
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync"
}

// isDirectFsync reports calls that hit the platter in this very
// function: (*os.File).Sync, or the journal package's fsync binding.
func (a *pkgAnalysis) isDirectFsync(call *ast.CallExpr) bool {
	if fn := a.pass.MethodOf(call); fn != nil {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			if named := analysis.NamedType(recv.Type()); named != nil &&
				named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "os" &&
				named.Obj().Name() == "File" && fn.Name() == "Sync" {
				return true
			}
		}
	}
	// The journal's injectable fsync binding is a package-level func
	// var, invisible to PkgFunc; match the identifier through its object.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if v, isVar := a.pass.TypesInfo.Uses[id].(*types.Var); isVar &&
			v.Name() == "fsync" && v.Parent() == a.pass.Pkg.Scope() {
			return true
		}
	}
	return false
}

// --- Phase C: held-set walking ---

// held is one currently-held lock.
type held struct {
	id       string
	pos      token.Pos
	deferred bool // released by a deferred Unlock: held to function end
}

// walker tracks the held-lock set through one function body in source
// order. Branches are walked on copies of the set (the common
// lock/unlock idioms are linear; locks leaked from a single branch are
// deliberately not tracked past it).
type walker struct {
	a     *pkgAnalysis
	fname string
	held  []held
}

func (a *pkgAnalysis) checkFunc(fd *ast.FuncDecl) {
	w := &walker{a: a, fname: fd.Name.Name}
	w.stmts(fd.Body.List)
}

func (w *walker) snapshot() []held {
	s := make([]held, len(w.held))
	copy(s, w.held)
	return s
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
		w.chanOp(s.Pos(), "send")
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, e := range vs.Values {
					w.expr(e)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.DeferStmt:
		w.deferStmt(s)
	case *ast.GoStmt:
		// The spawned goroutine runs under its own (empty) held set.
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.a.checkLit(lit, w.fname)
		}
		for _, arg := range s.Call.Args {
			w.expr(arg)
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		snap := w.snapshot()
		w.stmts(s.Body.List)
		w.held = snap
		if s.Else != nil {
			w.stmt(s.Else)
			w.held = snap
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		snap := w.snapshot()
		w.stmts(s.Body.List)
		if s.Post != nil {
			w.stmt(s.Post)
		}
		w.held = snap
	case *ast.RangeStmt:
		w.expr(s.X)
		if t := w.a.pass.TypesInfo.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				w.chanOp(s.Pos(), "range receive")
			}
		}
		snap := w.snapshot()
		w.stmts(s.Body.List)
		w.held = snap
	case *ast.SelectStmt:
		w.chanOp(s.Pos(), "select")
		snap := w.snapshot()
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				w.stmts(cc.Body)
				w.held = snap
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.caseClauses(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.caseClauses(s.Body)
	}
}

func (w *walker) caseClauses(body *ast.BlockStmt) {
	snap := w.snapshot()
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok {
			w.stmts(cc.Body)
			w.held = snap
		}
	}
}

// deferStmt handles `defer x.Unlock()` (the lock stays held to function
// end) and deferred closures (walked as separate contexts). Other
// deferred calls run at return time under whatever is then held;
// attributing them to the current held set would be wrong, so they are
// skipped.
func (w *walker) deferStmt(s *ast.DeferStmt) {
	if id, delta := w.a.mutexOp(s.Call); delta < 0 {
		for i := len(w.held) - 1; i >= 0; i-- {
			if w.held[i].id == id && !w.held[i].deferred {
				w.held[i].deferred = true
				return
			}
		}
		return
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		w.a.checkLit(lit, w.fname)
	}
}

// expr scans an expression for calls, receives and closures, in source
// order.
func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.a.checkLit(n, w.fname)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.expr(n.X)
				w.chanOp(n.Pos(), "receive")
				return false
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				w.expr(arg)
			}
			w.call(n)
			return false
		}
		return true
	})
}

// checkLit walks a function literal as its own execution context.
func (a *pkgAnalysis) checkLit(lit *ast.FuncLit, enclosing string) {
	w := &walker{a: a, fname: enclosing + ".func"}
	w.stmts(lit.Body.List)
}

// call processes one call under the current held set: mutex ops adjust
// the set and record ordering edges; calls into summarized functions
// contribute their transitive acquisitions as edges and their fsyncs as
// findings.
func (w *walker) call(call *ast.CallExpr) {
	if id, delta := w.a.mutexOp(call); delta != 0 {
		if delta > 0 {
			for _, h := range w.held {
				if h.id != id { // type-level identity: skip self-pairs
					w.a.addEdge(h.id, id, call.Pos())
				}
			}
			w.held = append(w.held, held{id: id, pos: call.Pos()})
		} else {
			for i := len(w.held) - 1; i >= 0; i-- {
				if w.held[i].id == id {
					w.held = append(w.held[:i], w.held[i+1:]...)
					break
				}
			}
		}
		return
	}
	if len(w.held) == 0 {
		return
	}
	callee := w.a.calleeFunc(call)
	if callee == nil {
		return
	}
	if s := w.a.calleeSummary(callee); s != nil {
		for _, h := range w.held {
			for _, acq := range s.Acquires {
				if acq != h.id {
					w.a.addEdge(h.id, acq, call.Pos())
				}
			}
		}
		if s.Fsyncs && w.a.reporting {
			w.a.pass.Reportf(call.Pos(),
				"call to %s while holding %s: the callee fsyncs, so the lock serializes on disk latency (release it first, or justify with //lint:allow)",
				callee.Name(), w.heldNames())
		}
	}
}

// chanOp reports a blocking channel operation under a held lock.
func (w *walker) chanOp(pos token.Pos, kind string) {
	if len(w.held) == 0 || !w.a.reporting {
		return
	}
	w.a.pass.Reportf(pos,
		"channel %s while holding %s: the peer goroutine may need the same lock to make progress",
		kind, w.heldNames())
}

func (w *walker) heldNames() string {
	names := make([]string, len(w.held))
	for i, h := range w.held {
		names[i] = h.id
	}
	sort.Strings(names)
	switch len(names) {
	case 1:
		return "lock " + names[0]
	default:
		return "locks " + fmt.Sprint(names)
	}
}

// addEdge records a local ordering edge (first occurrence wins).
func (a *pkgAnalysis) addEdge(from, to string, pos token.Pos) {
	key := [2]string{from, to}
	if _, ok := a.edges[key]; ok {
		return
	}
	a.edges[key] = localEdge{
		Edge: Edge{From: from, To: to, Where: a.pass.Fset.Position(pos).String()},
		pos:  pos,
	}
}

// exportAndCheckEdges publishes this package's edges as a package fact
// and reports every local edge whose reversal exists anywhere in the
// merged graph (local edges plus every dependency's exported edges).
func (a *pkgAnalysis) exportAndCheckEdges(report bool) {
	local := make([]localEdge, 0, len(a.edges))
	for _, e := range a.edges {
		local = append(local, e)
	}
	sort.Slice(local, func(i, j int) bool {
		if local[i].From != local[j].From {
			return local[i].From < local[j].From
		}
		return local[i].To < local[j].To
	})
	if len(local) > 0 {
		exported := make([]Edge, len(local))
		for i, e := range local {
			exported[i] = e.Edge
		}
		a.pass.ExportPackageFact(&Edges{Edges: exported})
	}
	if !report {
		return
	}

	// The merged graph: every dependency's exported edges plus this
	// package's own.
	global := map[[2]string]Edge{}
	for _, pf := range a.pass.AllPackageFacts(&Edges{}) {
		for _, e := range pf.Fact.(*Edges).Edges {
			key := [2]string{e.From, e.To}
			if _, ok := global[key]; !ok {
				global[key] = e
			}
		}
	}

	reported := map[[2]string]bool{}
	for _, e := range local {
		rev, ok := global[[2]string{e.To, e.From}]
		if !ok {
			continue
		}
		pair := [2]string{e.From, e.To}
		if e.To < e.From {
			pair = [2]string{e.To, e.From}
		}
		if reported[pair] {
			continue
		}
		reported[pair] = true
		a.pass.Reportf(e.pos,
			"lock %s acquired while holding %s, but the opposite order is taken at %s: inconsistent lock-pair ordering risks deadlock",
			e.To, e.From, rev.Where)
	}
}
