package analysis

import (
	"encoding/gob"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// testFact is a minimal gob-encodable fact for the round-trip tests.
type testFact struct {
	Acquires []string
	Bound    bool
}

func (*testFact) AFact() {}

func init() { gob.Register(&testFact{}) }

// typecheck parses and checks one synthetic package.
func typecheck(t *testing.T, path, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+"/x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	pkg, err := (&types.Config{}).Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}, pkg, info
}

const factSrc = `package locka

type Store struct{ n int }

func (s *Store) Append() {}

func Open() *Store { return nil }

var Registry = 0
`

// TestObjectKey pins the stable-key scheme: package functions by name,
// methods as Recv.Name, package vars by name, locals keyless.
func TestObjectKey(t *testing.T) {
	_, _, pkg, _ := typecheck(t, "internal/locka", factSrc)
	scope := pkg.Scope()

	open := scope.Lookup("Open")
	if key, ok := ObjectKey(open); !ok || key != "Open" {
		t.Errorf("Open key = %q, %v", key, ok)
	}
	store := scope.Lookup("Store").Type().(*types.Named)
	appendM := store.Method(0)
	if key, ok := ObjectKey(appendM); !ok || key != "Store.Append" {
		t.Errorf("method key = %q, %v", key, ok)
	}
	reg := scope.Lookup("Registry")
	if key, ok := ObjectKey(reg); !ok || key != "Registry" {
		t.Errorf("var key = %q, %v", key, ok)
	}
}

// TestFactRoundTrip exports facts through a Pass, serializes them as a
// vetx payload, decodes into a fresh DB, and imports them the way a
// dependent package's pass would.
func TestFactRoundTrip(t *testing.T) {
	fset, files, pkg, info := typecheck(t, "internal/locka", factSrc)
	a := &Analyzer{Name: "lockorder", FactTypes: []Fact{&testFact{}}}

	db := NewFactDB()
	pass := NewPass(a, fset, files, pkg, info, db)
	open := pkg.Scope().Lookup("Open")
	pass.ExportObjectFact(open, &testFact{Acquires: []string{"locka.Store.mu"}, Bound: true})
	pass.ExportPackageFact(&testFact{Acquires: []string{"edge"}})
	pass.ExportFactByKey(FieldKey("Store", "n"), &testFact{Bound: true})

	payload, err := db.EncodeFacts(pkg.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) == 0 {
		t.Fatal("encoded facts are empty")
	}

	db2 := NewFactDB()
	if err := db2.DecodeFacts(pkg.Path(), payload); err != nil {
		t.Fatal(err)
	}
	pass2 := NewPass(a, fset, files, pkg, info, db2)

	var got testFact
	if !pass2.ImportObjectFact(open, &got) {
		t.Fatal("object fact did not survive the round trip")
	}
	if len(got.Acquires) != 1 || got.Acquires[0] != "locka.Store.mu" || !got.Bound {
		t.Errorf("object fact = %+v", got)
	}
	var pf testFact
	if !pass2.ImportPackageFact(pkg.Path(), &pf) || len(pf.Acquires) != 1 || pf.Acquires[0] != "edge" {
		t.Errorf("package fact = %+v", pf)
	}
	var ff testFact
	if !pass2.ImportFactByKey(pkg.Path(), FieldKey("Store", "n"), &ff) || !ff.Bound {
		t.Errorf("field fact = %+v", ff)
	}
	if all := pass2.AllPackageFacts(&testFact{}); len(all) != 1 || all[0].Path != pkg.Path() {
		t.Errorf("AllPackageFacts = %+v", all)
	}

	// A fresh pass with a nil DB must degrade, not crash.
	nilPass := NewPass(a, fset, files, pkg, info, nil)
	nilPass.ExportObjectFact(open, &testFact{})
	if nilPass.ImportObjectFact(open, &got) {
		t.Error("nil-DB pass imported a fact")
	}
}

// TestDecodeEmptyPayload pins that fact-free vetx files (stdlib deps,
// pre-facts files) decode to nothing.
func TestDecodeEmptyPayload(t *testing.T) {
	db := NewFactDB()
	if err := db.DecodeFacts("fmt", nil); err != nil {
		t.Fatal(err)
	}
	if len(db.m) != 0 {
		t.Errorf("empty payload produced %d facts", len(db.m))
	}
}
