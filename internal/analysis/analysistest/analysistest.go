// Package analysistest runs one analyzer over fixture packages and
// checks its diagnostics against `// want "regexp"` comments, the same
// convention as golang.org/x/tools/go/analysis/analysistest (rebuilt on
// the standard library, since this module deliberately has no x/tools
// dependency).
//
// Fixtures live under testdata/src/<import-path> of the calling
// analyzer's package. Import paths that start with "internal/" resolve
// to sibling fixture packages (so a fixture can import the fixture
// "internal/units"); everything else resolves through the source
// importer, i.e. the real standard library.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"clustereval/internal/analysis"
)

// Run analyzes each fixture package under testdata/src and reports any
// mismatch between the analyzer's diagnostics and the fixtures' want
// comments as test failures. The //lint:allow filter is applied first,
// so fixtures can assert that a justified suppression silences a
// finding.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader("testdata/src", a)
	for _, pkgPath := range pkgPaths {
		t.Run(strings.ReplaceAll(pkgPath, "/", "_"), func(t *testing.T) {
			t.Helper()
			runOne(t, l, a, pkgPath)
		})
	}
}

func runOne(t *testing.T, l *loader, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	lp, err := l.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	pass := analysis.NewPass(a, l.fset, lp.files, lp.pkg, lp.info, l.facts)
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, pkgPath, err)
	}
	diags := analysis.Filter(l.fset, lp.files, pass.Diagnostics())

	wants := collectWants(t, l.fset, lp.files)
	for _, d := range diags {
		pos := l.fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}

// want is one expectation parsed from a `// want "re"` comment,
// anchored to the line the comment starts on.
type want struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

// wantRE extracts the quoted patterns of a want comment; both Go string
// syntaxes are accepted ("..." and backquotes).
var (
	wantRE    = regexp.MustCompile(`want((?:\s+(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `))+)`)
	patternRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")
)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range patternRE.FindAllString(m[1], -1) {
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants = append(wants, &want{
						file: pos.Filename, line: pos.Line,
						pattern: pattern, re: re,
					})
				}
			}
		}
	}
	return wants
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose regexp matches the message.
func claim(wants []*want, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// loadedPkg is one type-checked fixture package.
type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader type-checks fixture packages on demand, resolving
// fixture-to-fixture imports within the same testdata/src root. It
// mirrors the vetdriver's bottom-up fact flow: when a fixture imports a
// sibling fixture, the analyzer runs over the dependency first (facts
// only — its diagnostics are discarded) so the importing fixture sees
// exactly the cross-package facts a production run would.
type loader struct {
	root     string
	fset     *token.FileSet
	pkgs     map[string]*loadedPkg
	std      types.Importer
	analyzer *analysis.Analyzer
	facts    *analysis.FactDB
	factRan  map[string]bool
}

func newLoader(root string, a *analysis.Analyzer) *loader {
	l := &loader{
		root: root, fset: token.NewFileSet(), pkgs: map[string]*loadedPkg{},
		analyzer: a, facts: analysis.NewFactDB(), factRan: map[string]bool{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	return l
}

func (l *loader) load(pkgPath string) (*loadedPkg, error) {
	if lp, ok := l.pkgs[pkgPath]; ok {
		return lp, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	tc := &types.Config{Importer: importerFunc(l.importPkg)}
	info := analysis.NewInfo()
	pkg, err := tc.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking fixture %s: %w", pkgPath, err)
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	l.pkgs[pkgPath] = lp
	return lp, nil
}

func (l *loader) importPkg(path string) (*types.Package, error) {
	if strings.HasPrefix(path, "internal/") {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if err := l.runFacts(path, lp); err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.std.Import(path)
}

// runFacts runs the analyzer over a fixture dependency once, to harvest
// its exported facts before any dependent fixture is analyzed.
func (l *loader) runFacts(path string, lp *loadedPkg) error {
	if l.factRan[path] {
		return nil
	}
	l.factRan[path] = true
	pass := analysis.NewPass(l.analyzer, l.fset, lp.files, lp.pkg, lp.info, l.facts)
	if err := l.analyzer.Run(pass); err != nil {
		return fmt.Errorf("facts pass %s on %s: %w", l.analyzer.Name, path, err)
	}
	return nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
