// Fixture: every detflow source reaching the two sink shapes — the
// canonical encoder and the experiment result — plus the cleansing and
// suppression escape hatches. The sinks here are the fixture's own
// Canonicalize and Result; detflow matches them by name and package,
// exactly as it matches the production ones.
package experiment

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"internal/report"
)

// hostNow is an injected clock: calls through it taint like time.Now.
var hostNow = time.Now

// Result mimics the production experiment result payload.
type Result struct {
	Summary string
	GBps    float64
}

// Canonicalize is this fixture's canonical encoder (name-matched sink).
func Canonicalize(parts ...string) string {
	return strings.Join(parts, "|")
}

// log is NOT a sink: tainted values may flow to human-facing output.
func log(string) {}

// Direct feeds a wall-clock read straight into the encoder.
func Direct() string {
	return Canonicalize(time.Now().String()) // want `nondeterministic value \(time\.Now\) reaches canonical encoder experiment\.Canonicalize`
}

// OneCallDeep is the seeded acceptance case: the source lives one call
// away, in another package — exactly what the determinism analyzer's
// direct-call scan provably misses.
func OneCallDeep() string {
	return Canonicalize(report.Stamp()) // want `nondeterministic value \(the return value of Stamp — time\.Now\) reaches canonical encoder experiment\.Canonicalize`
}

// TwoCallsDeep rides the laundered variant: the fact chain composes.
func TwoCallsDeep() string {
	return Canonicalize(report.Indirect()) // want `reaches canonical encoder experiment\.Canonicalize`
}

// localStamp seeds the same-package fixpoint.
func localStamp() string {
	return time.Now().String()
}

// LocalHelper reaches the sink through a same-package helper.
func LocalHelper() string {
	return Canonicalize(localStamp()) // want `the return value of localStamp — time\.Now`
}

// Chained walks the taint through two assignments.
func Chained() string {
	t := time.Now()
	s := t.String()
	return Canonicalize(s) // want `nondeterministic value \(time\.Now\) reaches canonical encoder`
}

// InjectedClock taints through the hostNow binding.
func InjectedClock() string {
	return Canonicalize(hostNow().String()) // want `the injected clock hostNow \(bound to time\.Now\)`
}

// RandKey feeds a PRNG draw into the encoder.
func RandKey() string {
	return Canonicalize(strconv.Itoa(rand.Int())) // want `nondeterministic value \(math/rand\) reaches canonical encoder`
}

// MapOrder accumulates keys in iteration order: ordering taint.
func MapOrder(m map[string]float64) string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return Canonicalize(keys...) // want `nondeterministic value \(map iteration order\) reaches canonical encoder`
}

// MapSorted is the sanctioned collect-sort-emit idiom: non-report.
func MapSorted(m map[string]float64) string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return Canonicalize(keys...)
}

// TaintedResult stores a wall-clock string in the result payload.
func TaintedResult() Result {
	return Result{
		Summary: time.Now().String(), // want `nondeterministic value \(time\.Now\) stored in experiment result Result`
		GBps:    1024,
	}
}

// TaintedFieldWrite races the same rule through a field assignment.
func TaintedFieldWrite(r *Result) {
	r.Summary = report.Stamp() // want `stored in experiment result Result`
}

// CleanResult is derived from the spec alone: non-report.
func CleanResult(name string, gbps float64) Result {
	return Result{Summary: report.Label(name), GBps: gbps}
}

// CleanKey feeds only deterministic inputs to the encoder: non-report.
func CleanKey(name string) string {
	return Canonicalize("spec", name)
}

// HumanOutput sends wall-clock to a non-sink: non-report (sink-gated).
func HumanOutput() {
	log(time.Now().String())
}

// Waived documents a deliberate wall-clock cache key.
func Waived() string {
	//lint:allow detflow the ops dashboard cache is intentionally keyed by wall-clock hour
	return Canonicalize(time.Now().Format("2006010215"))
}
