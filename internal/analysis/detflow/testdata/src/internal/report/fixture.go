// Fixture: taint sources defined in another package. Stamp returns a
// wall-clock-derived string (its TaintFact is what the experiment
// fixture's one-call-deep case consumes); Label is deterministic.
package report

import "time"

// Stamp's return value derives from time.Now: TaintFact exported.
func Stamp() string {
	return time.Now().Format(time.RFC3339)
}

// Indirect launders Stamp through a local: still tainted (local
// fixpoint plus assignment transfer).
func Indirect() string {
	s := Stamp()
	return s
}

// Label is deterministic: no fact.
func Label(name string) string {
	return "report:" + name
}
