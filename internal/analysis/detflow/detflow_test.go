package detflow_test

import (
	"testing"

	"clustereval/internal/analysis/analysistest"
	"clustereval/internal/analysis/detflow"
)

func Test(t *testing.T) {
	analysistest.Run(t, detflow.Analyzer,
		"internal/report",
		"internal/experiment",
	)
}
