// Package detflow tracks nondeterministic values — wall-clock reads,
// math/rand draws, map-iteration order — through assignments and call
// returns, and reports only when one reaches a determinism sink: a
// canonical encoder, a cache key, or an experiment result. It is the
// cross-function upgrade of the determinism analyzer: `determinism`
// bans the sources outright inside simulation packages, while detflow
// follows the value, so a helper in a non-simulation package that
// returns a time.Now-derived string is caught at the Canonicalize call
// one (or many) calls away, via function facts.
package detflow

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"clustereval/internal/analysis"
)

// Analyzer reports nondeterministic values reaching canonical encoders,
// cache keys, or experiment results, anywhere in the module.
var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc: `flag nondeterministic values that reach canonical encoders or results

A cache key or canonical encoding derived from time.Now, math/rand, or
Go's randomized map iteration order differs between runs: cache hits
become misses, golden files churn, and replicated journals diverge.
This analyzer taints such values and follows them through assignments
and function returns (via facts, so the source may sit in another
package), reporting only when a tainted value reaches:

  - a call to an in-module Canonical*/**CacheKey* function;
  - a composite literal or field write of an internal/experiment
    *Result type.

Sorting cleanses: data that flows through sort.*/slices.Sort* is the
sanctioned collect-sort-emit idiom and is not reported. Injected clocks
(package variables or fields bound to time.Now) taint exactly like
time.Now itself — injection makes wall-clock reads auditable and
testable, not deterministic. A site that genuinely wants wall-clock in
its output carries '//lint:allow detflow <justification>'.`,
	Run:       run,
	FactTypes: []analysis.Fact{&TaintFact{}},
}

// TaintFact marks a function whose return value derives from a
// nondeterminism source; Why names the source for diagnostics.
type TaintFact struct {
	Why string
}

// AFact marks TaintFact as a fact.
func (*TaintFact) AFact() {}

func run(pass *analysis.Pass) error {
	if _, inModule := analysis.RelPkgPath(pass.Pkg.Path()); !inModule {
		return nil
	}

	clockVars := collectClockVars(pass)

	// Fixpoint over this package's functions: a function returning a
	// tainted value taints its callers' results in the next round.
	var fns []*ast.FuncDecl
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fns = append(fns, fd)
			}
		}
	}
	localTaint := map[*types.Func]string{}
	for changed := true; changed; {
		changed = false
		for _, fd := range fns {
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if _, done := localTaint[fn]; done {
				continue
			}
			t := newTainter(pass, clockVars, localTaint)
			t.analyze(fd)
			if why, ok := t.returnsTainted(fd); ok {
				localTaint[fn] = why
				changed = true
			}
		}
	}
	for fn, why := range localTaint {
		pass.ExportObjectFact(fn, &TaintFact{Why: why})
	}

	// Reporting: re-derive each function's taint against the complete
	// local summary, then walk for sinks.
	for _, fd := range fns {
		t := newTainter(pass, clockVars, localTaint)
		t.analyze(fd)
		t.checkSinks(fd)
	}
	return nil
}

// collectClockVars finds the injected-clock bindings: package variables
// and struct fields assigned time.Now or time.Since. Calls through them
// taint exactly like the time functions they are bound to.
func collectClockVars(pass *analysis.Pass) map[types.Object]string {
	clocks := map[types.Object]string{}
	bind := func(obj types.Object, rhs ast.Expr) {
		if obj == nil {
			return
		}
		fn := timeFuncRef(pass, rhs)
		if fn == "" {
			return
		}
		clocks[obj] = fmt.Sprintf("the injected clock %s (bound to time.%s)", obj.Name(), fn)
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						bind(pass.TypesInfo.Defs[name], n.Values[i])
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					switch lhs := ast.Unparen(lhs).(type) {
					case *ast.Ident:
						obj := pass.TypesInfo.Uses[lhs]
						if obj == nil {
							obj = pass.TypesInfo.Defs[lhs]
						}
						bind(obj, n.Rhs[i])
					case *ast.SelectorExpr:
						if s, ok := pass.TypesInfo.Selections[lhs]; ok && s.Kind() == types.FieldVal {
							bind(s.Obj(), n.Rhs[i])
						}
					}
				}
			}
			return true
		})
	}
	return clocks
}

// timeFuncRef reports the name of the time-package function e refers to
// (as a value, not a call), or "".
func timeFuncRef(pass *analysis.Pass, e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return ""
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
		return fn.Name()
	}
	return ""
}

// tainter derives the tainted local variables of one function body.
type tainter struct {
	pass       *analysis.Pass
	clockVars  map[types.Object]string
	localTaint map[*types.Func]string
	tainted    map[types.Object]string
	cleansed   map[types.Object]bool
	changed    bool
}

func newTainter(pass *analysis.Pass, clocks map[types.Object]string, local map[*types.Func]string) *tainter {
	return &tainter{
		pass: pass, clockVars: clocks, localTaint: local,
		tainted: map[types.Object]string{}, cleansed: map[types.Object]bool{},
	}
}

// analyze runs the flow-insensitive taint transfer to a fixpoint.
func (t *tainter) analyze(fd *ast.FuncDecl) {
	for {
		t.changed = false
		ast.Inspect(fd.Body, t.visit)
		if !t.changed {
			break
		}
	}
}

func (t *tainter) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.RangeStmt:
		// Go randomizes map iteration order: the loop variables carry it.
		if t.pass.IsMapType(n.X) {
			t.taintLHS(n.Key, "map iteration order")
			t.taintLHS(n.Value, "map iteration order")
		}
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				if why, ok := t.exprTaint(n.Rhs[i]); ok {
					t.taintLHS(n.Lhs[i], why)
				}
			}
		} else if len(n.Rhs) == 1 {
			if why, ok := t.exprTaint(n.Rhs[0]); ok {
				for _, lhs := range n.Lhs {
					t.taintLHS(lhs, why)
				}
			}
		}
	case *ast.ValueSpec:
		for i, name := range n.Names {
			var rhs ast.Expr
			switch {
			case i < len(n.Values):
				rhs = n.Values[i]
			case len(n.Values) == 1:
				rhs = n.Values[0]
			}
			if rhs != nil {
				if why, ok := t.exprTaint(rhs); ok {
					t.taintLHS(name, why)
				}
			}
		}
	case *ast.CallExpr:
		// sort.*/slices.Sort* cleanses: collect-sort-emit is the
		// sanctioned way to canonicalize map-derived data.
		if fn := t.pass.PkgFunc(n); fn != nil && fn.Pkg() != nil &&
			(fn.Pkg().Path() == "sort" || fn.Pkg().Path() == "slices") {
			for _, arg := range n.Args {
				if obj := t.baseObj(arg); obj != nil {
					t.cleansed[obj] = true
					delete(t.tainted, obj)
				}
			}
		}
	}
	return true
}

// taintLHS marks the object behind an assignment target. Index and
// selector targets taint their base (storing a tainted element taints
// the container).
func (t *tainter) taintLHS(lhs ast.Expr, why string) {
	obj := t.baseObj(lhs)
	if obj == nil || obj.Name() == "_" || t.cleansed[obj] {
		return
	}
	if _, already := t.tainted[obj]; !already {
		t.tainted[obj] = why
		t.changed = true
	}
}

// baseObj resolves an expression to the local object it denotes,
// unwrapping index, star, paren and selector layers.
func (t *tainter) baseObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.Ident:
			if obj := t.pass.TypesInfo.Defs[x]; obj != nil {
				return obj
			}
			return t.pass.TypesInfo.Uses[x]
		default:
			return nil
		}
	}
}

// exprTaint reports whether evaluating e involves a tainted value, and
// names the source.
func (t *tainter) exprTaint(e ast.Expr) (string, bool) {
	var why string
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			obj := t.pass.TypesInfo.Uses[n]
			if obj == nil {
				obj = t.pass.TypesInfo.Defs[n]
			}
			if obj != nil {
				if w, ok := t.tainted[obj]; ok {
					why, found = w, true
					return false
				}
			}
		case *ast.CallExpr:
			if w, ok := t.sourceCall(n); ok {
				why, found = w, true
				return false
			}
		}
		return true
	})
	return why, found
}

// sourceCall reports whether call is itself a nondeterminism source: a
// wall-clock read (direct or through an injected clock), a math/rand
// draw, or a call to a function whose TaintFact says its return value
// derives from one.
func (t *tainter) sourceCall(call *ast.CallExpr) (string, bool) {
	if fn := t.pass.PkgFunc(call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				return "time." + fn.Name(), true
			}
		case "math/rand", "math/rand/v2":
			return fn.Pkg().Path(), true
		}
		if w, ok := t.calleeTaint(fn); ok {
			return w, true
		}
	}
	if fn := t.pass.MethodOf(call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			return fn.Pkg().Path(), true
		}
		if w, ok := t.calleeTaint(fn); ok {
			return w, true
		}
	}
	// Calls through an injected-clock binding: hostNow(), c.clock().
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := t.pass.TypesInfo.Uses[fun]; obj != nil {
			if w, ok := t.clockVars[obj]; ok {
				return w, true
			}
		}
	case *ast.SelectorExpr:
		if s, ok := t.pass.TypesInfo.Selections[fun]; ok && s.Kind() == types.FieldVal {
			if w, ok := t.clockVars[s.Obj()]; ok {
				return w, true
			}
		}
	}
	return "", false
}

// calleeTaint consults the local fixpoint and imported facts for fn.
func (t *tainter) calleeTaint(fn *types.Func) (string, bool) {
	if why, ok := t.localTaint[fn]; ok {
		return fmt.Sprintf("the return value of %s — %s", fn.Name(), why), true
	}
	var fact TaintFact
	if t.pass.ImportObjectFact(fn, &fact) {
		return fmt.Sprintf("the return value of %s — %s", fn.Name(), fact.Why), true
	}
	return "", false
}

// returnsTainted reports whether fd's own return values (not those of
// nested function literals) are tainted.
func (t *tainter) returnsTainted(fd *ast.FuncDecl) (string, bool) {
	var named []types.Object
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := t.pass.TypesInfo.Defs[name]; obj != nil {
					named = append(named, obj)
				}
			}
		}
	}
	var why string
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if w, ok := t.exprTaint(r); ok {
					why, found = w, true
					return false
				}
			}
			if len(n.Results) == 0 {
				for _, obj := range named {
					if w, ok := t.tainted[obj]; ok {
						why, found = w, true
						return false
					}
				}
			}
		}
		return true
	})
	return why, found
}

// checkSinks walks fd for determinism sinks fed by tainted values.
func (t *tainter) checkSinks(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sink, ok := t.sinkCall(n)
			if !ok {
				return true
			}
			for _, arg := range n.Args {
				if why, tainted := t.exprTaint(arg); tainted {
					t.pass.Reportf(arg.Pos(),
						"nondeterministic value (%s) reaches canonical encoder %s: cache keys and canonical encodings must depend only on the spec and seed (//lint:allow detflow <why> as a last resort)",
						why, sink)
				}
			}
		case *ast.CompositeLit:
			name, ok := t.resultType(t.pass.TypesInfo.TypeOf(n))
			if !ok {
				return true
			}
			for _, elt := range n.Elts {
				val := elt
				if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
					val = kv.Value
				}
				if why, tainted := t.exprTaint(val); tainted {
					t.pass.Reportf(val.Pos(),
						"nondeterministic value (%s) stored in experiment result %s: results must be reproducible from the spec and seed (//lint:allow detflow <why> as a last resort)",
						why, name)
				}
			}
		case *ast.AssignStmt:
			// res.Field = <tainted> on an experiment *Result value.
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				sel, isSel := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !isSel {
					continue
				}
				s, selOK := t.pass.TypesInfo.Selections[sel]
				if !selOK || s.Kind() != types.FieldVal {
					continue
				}
				name, isResult := t.resultType(s.Recv())
				if !isResult {
					continue
				}
				if why, tainted := t.exprTaint(n.Rhs[i]); tainted {
					t.pass.Reportf(n.Rhs[i].Pos(),
						"nondeterministic value (%s) stored in experiment result %s: results must be reproducible from the spec and seed (//lint:allow detflow <why> as a last resort)",
						why, name)
				}
			}
		}
		return true
	})
}

// sinkCall recognizes in-module canonical encoders and cache-key
// builders by name: Canonicalize, Canonical*, *CacheKey*.
func (t *tainter) sinkCall(call *ast.CallExpr) (string, bool) {
	fn := t.pass.PkgFunc(call)
	if fn == nil {
		fn = t.pass.MethodOf(call)
	}
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if _, in := analysis.RelPkgPath(fn.Pkg().Path()); !in {
		return "", false
	}
	name := fn.Name()
	if strings.HasPrefix(name, "Canonical") || strings.Contains(name, "CacheKey") {
		return fn.Pkg().Name() + "." + name, true
	}
	return "", false
}

// resultType reports whether typ is an internal/experiment *Result type.
func (t *tainter) resultType(typ types.Type) (string, bool) {
	named := analysis.NamedType(typ)
	if named == nil || named.Obj().Pkg() == nil {
		return "", false
	}
	rel, in := analysis.RelPkgPath(named.Obj().Pkg().Path())
	if !in || !analysis.UnderAny(rel, []string{"internal/experiment"}) {
		return "", false
	}
	if !strings.HasSuffix(named.Obj().Name(), "Result") {
		return "", false
	}
	return named.Obj().Name(), true
}
