package errwrap_test

import (
	"testing"

	"clustereval/internal/analysis/analysistest"
	"clustereval/internal/analysis/errwrap"
)

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, errwrap.Analyzer, "internal/journal")
}
