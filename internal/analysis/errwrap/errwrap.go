// Package errwrap guards the error-inspection contracts of the service
// and journal layers: callers match their failures with errors.Is /
// errors.As (journal.ErrCorrupt, the service's typed overload and
// not-found errors), which only works while every fmt.Errorf on the way
// wraps with %w instead of flattening the cause into text.
package errwrap

import (
	"go/ast"
	"go/types"

	"clustereval/internal/analysis"
)

// Analyzer flags fmt.Errorf calls in analysis.WrapPackages that format
// an error operand with a non-wrapping verb.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc: `require %w when formatting errors into errors

In internal/service and internal/journal, a fmt.Errorf that renders an
error-typed argument with %v, %s or %q severs the error chain: the
sentinel underneath stops matching errors.Is, and typed errors stop
matching errors.As. Those packages are exactly where callers rely on
such matches (journal recovery treats ErrCorrupt as a truncation point;
clusterd's HTTP layer maps typed errors onto status codes), so the verb
must be %w.

Since Go 1.20 fmt.Errorf may wrap several errors in one message, so
"%w at byte %d: %w" is the right shape when two causes matter. Use
'//lint:allow errwrap <justification>' for the rare message that must
flatten an error into opaque text deliberately.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), analysis.WrapPackages) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkErrorf(pass, call)
			return true
		})
	}
	return nil
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if !pass.CallTo(call, "fmt", "Errorf") {
		return
	}
	format, args, ok := analysis.FormatLiteral(call, 0)
	if !ok {
		return
	}
	for _, v := range analysis.ParseVerbs(format) {
		switch v.Verb {
		case 'v', 's', 'q':
		default:
			continue
		}
		if v.ArgIndex >= len(args) {
			continue
		}
		arg := args[v.ArgIndex]
		if !isErrorType(pass.TypesInfo.TypeOf(arg)) {
			continue
		}
		pass.Reportf(arg.Pos(),
			"error formatted with %%%c loses the chain for errors.Is/errors.As: wrap it with %%w",
			v.Verb)
	}
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorInterface)
}
