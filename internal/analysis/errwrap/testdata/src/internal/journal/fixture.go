package journal

import (
	"errors"
	"fmt"
)

var ErrCorrupt = errors.New("journal: corrupt record")

func flattened(off int, derr error) error {
	return fmt.Errorf("%w at byte %d: %v", ErrCorrupt, off, derr) // want `error formatted with %v loses the chain`
}

func stringified(err error) error {
	return fmt.Errorf("replay failed: %s", err) // want `error formatted with %s loses the chain`
}

func quoted(err error) error {
	return fmt.Errorf("replay failed: %q", err) // want `error formatted with %q loses the chain`
}

func wrapped(off int, derr error) error {
	return fmt.Errorf("%w at byte %d: %w", ErrCorrupt, off, derr)
}

// notAnError: %v over non-error arguments is ordinary formatting.
func notAnError(off int) error {
	return fmt.Errorf("bad offset %v", off)
}

// opaque demonstrates a justified suppression: the error is flattened
// deliberately so it cannot be unwrapped across the trust boundary.
func opaque(err error) error {
	//lint:allow errwrap message crosses the wire; the cause must not be unwrappable
	return fmt.Errorf("internal failure: %v", err)
}
