// Package units is the fixture twin of the real internal/units: named
// float64 quantities. Conversion arithmetic inside this package is
// exempt by construction.
package units

type Seconds float64

type Bytes float64

type Watts float64

type Joules float64

// KiB is a conversion constant; defining it here (1024 against a raw
// literal) must not be flagged.
const KiB = Bytes(1) * 1024
