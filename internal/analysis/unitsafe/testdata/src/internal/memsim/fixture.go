package memsim

import "internal/units"

func latency(t units.Seconds, b units.Bytes) units.Seconds {
	t = t + 0.5                // want `raw literal 0\.5 added to a units\.Seconds`
	t = t - 1                  // want `raw literal 1 subtracted from a units\.Seconds`
	t = 2.5 + t                // want `raw literal 2\.5 added to a units\.Seconds`
	t = t * 1e9                // want `scaling a units\.Seconds by raw magnitude 1e9`
	t = t / 4096               // want `scaling a units\.Seconds by raw magnitude 4096`
	t = t * 2                  // small dimensionless factor: fine
	t = t / 3                  // fine
	t = t + units.Seconds(0.5) // constructor makes the unit explicit: fine
	_ = b
	return t
}

func energy(p units.Watts, e units.Joules) units.Joules {
	p = p + 7                 // want `raw literal 7 added to a units\.Watts`
	e = e * 3.6e6             // want `scaling a units\.Joules by raw magnitude 3\.6e6`
	e = e - 1                 // want `raw literal 1 subtracted from a units\.Joules`
	e = e / 2                 // halving an energy keeps the unit: fine
	e = e + units.Joules(0.5) // constructor makes the unit explicit: fine
	_ = p
	return e
}

func waived(t units.Seconds) units.Seconds {
	//lint:allow unitsafe nanosecond conversion pinned by the wire format
	return t * 1e9
}

// plain float64 arithmetic is out of unitsafe's jurisdiction entirely.
func raw(x float64) float64 {
	return x*1e9 + 0.5
}
