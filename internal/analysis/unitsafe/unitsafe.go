// Package unitsafe polices arithmetic on the typed physical quantities
// in internal/units (Seconds, Bytes, BytesPerSecond, FlopsPerSecond,
// Watts, Joules — any named type declared there is covered).
// Every quantity in the model is an architectural ratio in explicit
// units parameterised from Table I of the paper; a raw numeric literal
// fused into that arithmetic is either a dimension error or an inline
// unit conversion that belongs next to the units constants.
package unitsafe

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"clustereval/internal/analysis"
)

// Analyzer flags unit-typed arithmetic mixed with raw numeric literals
// outside internal/units itself.
var Analyzer = &analysis.Analyzer{
	Name: "unitsafe",
	Doc: `forbid raw numeric literals in units-typed arithmetic

Outside internal/units (whose constructors and String methods are the
one sanctioned place for conversion factors), this analyzer reports a
binary expression that mixes a units-typed operand with a bare numeric
literal when

  - the operator is + or - : adding a naked number to a quantity is
    dimensionally meaningless; wrap the literal in the quantity's
    constructor (units.Seconds(0.5)) so the intended unit is visible;
  - the operator is * or / and the literal is a magnitude >= 1000 or in
    scientific notation: that is an inline unit conversion; use the
    units.Kilo/Mega/Giga/KiB/MiB/GiB constants inside a constructor
    instead.

Small dimensionless factors (t * 2, rtt / 2, b / 3) remain legal:
scaling a quantity does not change its unit.

_test.go files are exempt — tests construct literal expectations
constantly, and a wrong unit there fails the assertion anyway.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	rel, ok := analysis.RelPkgPath(pass.Pkg.Path())
	if !ok || rel == analysis.UnitsPackage {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			checkBinary(pass, bin)
			return true
		})
	}
	return nil
}

func checkBinary(pass *analysis.Pass, bin *ast.BinaryExpr) {
	switch bin.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return
	}
	xUnit := unitsTypeName(pass.TypesInfo.TypeOf(bin.X))
	yUnit := unitsTypeName(pass.TypesInfo.TypeOf(bin.Y))
	if xUnit == "" && yUnit == "" {
		return
	}
	for _, side := range []struct {
		lit  ast.Expr
		unit string
	}{{bin.Y, xUnit}, {bin.X, yUnit}} {
		if side.unit == "" {
			continue
		}
		lit, ok := literalOperand(side.lit)
		if !ok {
			continue
		}
		additive := bin.Op == token.ADD || bin.Op == token.SUB
		if additive {
			pass.Reportf(lit.Pos(),
				"raw literal %s %s a units.%s: wrap it in units.%s(...) so the unit is explicit",
				lit.Value, opWord(bin.Op), side.unit, side.unit)
			continue
		}
		if isMagnitude(pass, lit) {
			pass.Reportf(lit.Pos(),
				"scaling a units.%s by raw magnitude %s looks like an inline unit conversion: use the units.Kilo/Giga/KiB constants in a constructor",
				side.unit, lit.Value)
		}
	}
}

// opWord renders the additive operator for the diagnostic message.
func opWord(op token.Token) string {
	if op == token.ADD {
		return "added to"
	}
	return "subtracted from"
}

// unitsTypeName returns the quantity's type name when t is a named type
// declared in internal/units, else "".
func unitsTypeName(t types.Type) string {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	rel, ok := analysis.RelPkgPath(obj.Pkg().Path())
	if !ok || rel != analysis.UnitsPackage {
		return ""
	}
	if b, ok := named.Underlying().(*types.Basic); !ok || b.Info()&types.IsNumeric == 0 {
		return ""
	}
	return obj.Name()
}

// literalOperand unwraps parens and a leading minus to a bare numeric
// literal.
func literalOperand(e ast.Expr) (*ast.BasicLit, bool) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || (lit.Kind != token.INT && lit.Kind != token.FLOAT) {
		return nil, false
	}
	return lit, true
}

// isMagnitude reports whether the literal reads as a unit-conversion
// factor: scientific notation, or an absolute value of at least 1000.
func isMagnitude(pass *analysis.Pass, lit *ast.BasicLit) bool {
	for _, r := range lit.Value {
		if r == 'e' || r == 'E' {
			return true // scientific notation is always a conversion smell
		}
	}
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Value == nil {
		return false
	}
	f, _ := constant.Float64Val(constant.ToFloat(tv.Value))
	if f < 0 {
		f = -f
	}
	return f >= 1000
}
