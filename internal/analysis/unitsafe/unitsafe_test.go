package unitsafe_test

import (
	"testing"

	"clustereval/internal/analysis/analysistest"
	"clustereval/internal/analysis/unitsafe"
)

func TestUnitsafe(t *testing.T) {
	analysistest.Run(t, unitsafe.Analyzer, "internal/memsim", "internal/units")
}
