package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression: a finding is waived by an adjacent comment of the form
//
//	//lint:allow <analyzer> <justification>
//
// on the same line as the finding or the line directly above it. The
// justification is mandatory — a bare //lint:allow suppresses nothing —
// so every waiver records *why* the invariant does not apply at that call
// site. TESTING.md documents the policy.
const allowPrefix = "//lint:allow"

// allowSite is one parsed //lint:allow comment.
type allowSite struct {
	analyzer      string
	justification string
}

// allowIndex maps file name -> line -> waivers declared on that line.
type allowIndex map[string]map[int][]allowSite

// buildAllowIndex scans the files' comments for //lint:allow directives.
// Files must have been parsed with parser.ParseComments.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := allowIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
				name, justification, _ := strings.Cut(rest, " ")
				if name == "" || strings.TrimSpace(justification) == "" {
					continue // no analyzer or no justification: not a waiver
				}
				pos := fset.Position(c.Pos())
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int][]allowSite{}
					idx[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], allowSite{
					analyzer:      name,
					justification: strings.TrimSpace(justification),
				})
			}
		}
	}
	return idx
}

// Annotate marks diagnostics waived by a //lint:allow comment on their
// line or the line above as Suppressed, recording the justification. It
// returns every diagnostic — callers choose whether suppressed findings
// are dropped (text output, analysistest) or reported flagged (-json).
func Annotate(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	idx := buildAllowIndex(fset, files)
	if len(idx) == 0 {
		return diags
	}
	for i := range diags {
		pos := fset.Position(diags[i].Pos)
		if site, ok := idx.waiver(pos.Filename, pos.Line, diags[i].Analyzer); ok {
			diags[i].Suppressed = true
			diags[i].Justification = site.justification
		}
	}
	return diags
}

// Filter drops diagnostics waived by a //lint:allow comment on their line
// or the line above. It is applied by both vetdriver and analysistest, so
// fixtures exercise the suppression path exactly as production runs do.
func Filter(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	kept := diags[:0]
	for _, d := range Annotate(fset, files, diags) {
		if !d.Suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

func (idx allowIndex) waiver(file string, line int, analyzer string) (allowSite, bool) {
	byLine, ok := idx[file]
	if !ok {
		return allowSite{}, false
	}
	for _, l := range []int{line, line - 1} {
		for _, site := range byLine[l] {
			if site.analyzer == analyzer {
				return site, true
			}
		}
	}
	return allowSite{}, false
}
