// Package determinism forbids nondeterminism sources inside the
// simulation packages: every figure of the reproduction must be
// bit-identical given the same seed, so simulated results may depend on
// nothing but their inputs.
package determinism

import (
	"go/ast"
	"strings"

	"clustereval/internal/analysis"
)

// Analyzer flags wall-clock reads, global math/rand use, and map
// iteration feeding output or hashes inside analysis.SimPackages.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: `forbid nondeterminism sources in simulation packages

Simulated results must be bit-reproducible from a seed (the paper's
figures are regenerated as golden CSVs), so inside the simulation
packages this analyzer reports:

  - calls to time.Now, time.Since, time.Sleep, time.After, time.AfterFunc,
    time.Tick, time.NewTimer and time.NewTicker (in _test.go files only
    Now and Since are reported: timers are legitimate test
    synchronization, wall-clock timestamps in assertions are not);
  - any import of math/rand or math/rand/v2 — randomness comes from
    internal/xrand, whose generators are seeded, splittable and
    journal-stable;
  - ranging over a map while directly printing, writing or hashing in the
    loop body: Go randomizes map iteration order, so such loops emit
    different bytes on every run. Collect the keys, sort them, then emit.

Genuine wall-clock call sites (host-kernel benchmark timing, metrics
timestamps) route through an injected clock — a package variable bound to
time.Now — which keeps every wall-clock read auditable at one
declaration. As a last resort a site can carry
'//lint:allow determinism <justification>'.`,
	Run: run,
}

// forbiddenTime are the time package functions that read or depend on the
// wall clock. The value records whether the call stays forbidden even in
// _test.go files.
var forbiddenTime = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Sleep":     false,
	"After":     false,
	"AfterFunc": false,
	"Tick":      false,
	"NewTimer":  false,
	"NewTicker": false,
}

// emitters are callee names that turn loop iterations into observable
// bytes: formatted printing, io writes, and hash/encoder feeding.
var emitters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprint": true, "Sprintf": true, "Sprintln": true, "Appendf": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Sum": true, "Sum256": true, "Encode": true, "Marshal": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.InScope(pass.Pkg.Path(), analysis.SimPackages) {
		return nil
	}
	for _, file := range pass.Files {
		isTest := pass.IsTestFile(file.Pos())
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s in a simulation package: use the seeded generators in internal/xrand", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkTimeCall(pass, n, isTest)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkTimeCall(pass *analysis.Pass, call *ast.CallExpr, isTest bool) {
	fn := pass.PkgFunc(call)
	if fn == nil || fn.Pkg().Path() != "time" {
		return
	}
	alwaysForbidden, listed := forbiddenTime[fn.Name()]
	if !listed || (isTest && !alwaysForbidden) {
		return
	}
	pass.Reportf(call.Pos(),
		"call to time.%s in a simulation package: results must depend only on the spec and seed (inject a clock for wall-clock-only sites)",
		fn.Name())
}

func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	if !pass.IsMapType(rng.X) {
		return
	}
	var emitter *ast.CallExpr
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if emitter != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && emitters[analysis.CalleeName(call)] {
			emitter = call
			return false
		}
		return true
	})
	if emitter != nil {
		pass.Reportf(rng.Pos(),
			"map iteration order is random but the loop body calls %s: collect the keys, sort, then emit",
			analysis.CalleeName(emitter))
	}
}
