package determinism_test

import (
	"testing"

	"clustereval/internal/analysis/analysistest"
	"clustereval/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer, "internal/mpisim", "internal/report")
}
