package mpisim

import "time"

// In _test.go files timers are legitimate synchronization, but
// wall-clock reads in assertions are still forbidden.

func testSleepAllowed() {
	time.Sleep(time.Millisecond)
	<-time.After(time.Millisecond)
}

func testNowStillForbidden() time.Time {
	return time.Now() // want `call to time\.Now`
}
