package mpisim

import (
	"fmt"
	_ "math/rand" // want `import of math/rand in a simulation package`
	"sort"
	"time"
)

// hostNow is the injected-clock shape: binding the function value is
// allowed, calling time.Now inline is not.
var hostNow = time.Now

func stamp() time.Time {
	return time.Now() // want `call to time\.Now in a simulation package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `call to time\.Since`
}

func throttle() {
	time.Sleep(time.Millisecond) // want `call to time\.Sleep`
}

func waived() time.Time {
	//lint:allow determinism wall-clock timestamp feeds the metrics endpoint only
	return time.Now()
}

func dumpUnsorted(m map[string]int) {
	for k, v := range m { // want `map iteration order is random but the loop body calls Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func dumpSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s=%d\n", k, m[k])
	}
}
