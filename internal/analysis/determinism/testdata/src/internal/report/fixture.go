// Package report is outside analysis.SimPackages: wall-clock use here
// is the determinism analyzer's business only inside the simulation
// packages, so nothing in this file may be flagged.
package report

import "time"

func Stamp() time.Time { return time.Now() }
