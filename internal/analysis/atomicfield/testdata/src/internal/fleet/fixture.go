// Fixture: cross-package detection through imported field facts, the
// foreign-upgrade package fact, and purely local mixing.
package fleet

import (
	"sync/atomic"

	"internal/journal"
)

// Drain reads a field the declaring package maintains atomically: the
// AtomicFact arrives with internal/journal's facts.
func Drain(g *journal.Gauge) int64 {
	return g.Hits // want `plain access to internal/journal\.Gauge\.Hits`
}

// Observe does it right: non-report.
func Observe(g *journal.Gauge) int64 { return atomic.LoadInt64(&g.Hits) }

// Roll upgrades Window.Count to atomic from outside its declaring
// package; the observation is published as a package fact.
func Roll(w *journal.Window) { atomic.AddInt64(&w.Count, 1) }

// RollBad mixes a plain store into the same package's upgrade.
func RollBad(w *journal.Window) {
	w.Count = 0 // want `plain access to internal/journal\.Window\.Count`
}

// tally never leaves this package: both sides caught without facts.
type tally struct{ n uint64 }

func (t *tally) add() { atomic.AddUint64(&t.n, 1) }

func (t *tally) read() uint64 {
	return t.n // want `plain access to internal/fleet\.tally\.n`
}
