// Fixture: the declaring package's own atomic/plain mix, the
// constructor exemption, and the suppression escape hatch. Window is
// deliberately untouched by sync/atomic here — internal/fleet upgrades
// it from outside, which internal/service must then respect.
package journal

import "sync/atomic"

// Gauge mixes an atomically-maintained counter with plain metadata.
type Gauge struct {
	Hits int64  // every access must go through sync/atomic
	name string // plain field, never atomic: free to access directly
}

// NewGauge stores plainly before the value escapes: a pinned
// non-report (constructor exemption).
func NewGauge(name string) *Gauge {
	g := &Gauge{}
	g.Hits = 0
	g.name = name
	return g
}

// Inc is the access that makes Hits an atomic field.
func (g *Gauge) Inc() { atomic.AddInt64(&g.Hits, 1) }

// Load does it right: non-report.
func (g *Gauge) Load() int64 { return atomic.LoadInt64(&g.Hits) }

// Snapshot races with Inc: reported.
func (g *Gauge) Snapshot() int64 {
	return g.Hits // want `plain access to internal/journal\.Gauge\.Hits, a field accessed via sync/atomic elsewhere`
}

// Name touches only the never-atomic field: non-report.
func (g *Gauge) Name() string { return g.name }

// Reset is a deliberate plain store with a written waiver.
func (g *Gauge) Reset() {
	//lint:allow atomicfield called only under the registry's stop barrier, after every writer has exited
	g.Hits = 0
}

// Window has no atomic accesses in its declaring package.
type Window struct {
	Count int64
}
