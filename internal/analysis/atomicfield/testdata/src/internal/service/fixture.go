// Fixture: internal/fleet atomically bumps journal.Window.Count; that
// foreign observation reaches this package as a package fact even
// though internal/service never imports internal/fleet.
package service

import "internal/journal"

// Sample races with internal/fleet's atomic.AddInt64 on the same field.
func Sample(w *journal.Window) int64 {
	return w.Count // want `plain access to internal/journal\.Window\.Count`
}
