// Package atomicfield enforces the all-or-nothing contract of
// sync/atomic: a struct field that is accessed atomically anywhere must
// be accessed atomically everywhere. A single plain read or write races
// with every atomic.Add/Load/Store on the same address, and the race
// detector only catches the interleavings a given run happens to hit.
//
// The fact engine makes the contract cross-package: the declaring
// package exports an AtomicFact per atomically-accessed field, and a
// package that atomically touches a field of an imported type publishes
// that observation as a package fact, so a third package mixing in a
// plain access is caught even though it never sees the atomic call.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"clustereval/internal/analysis"
)

// Analyzer flags plain accesses to struct fields that are accessed via
// sync/atomic elsewhere in the module.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: `require atomic access to fields that are accessed atomically anywhere

If one goroutine runs atomic.AddInt64(&s.n, 1) and another reads s.n
plainly, the program has a data race regardless of how rarely the plain
access runs. This analyzer collects every struct field that appears as
an &x.f argument to a sync/atomic call, then reports every plain
(non-atomic) access to the same field anywhere in the module, seeing
across packages through field facts.

Initialization inside constructor functions (New*, new*, init) is not
reported: before the value is published, plain stores cannot race. Any
other provably single-threaded access needs
'//lint:allow atomicfield <justification>'.`,
	Run:       run,
	FactTypes: []analysis.Fact{&AtomicFact{}, &ForeignAtomics{}},
}

// AtomicFact marks a field of a type declared in the exporting package
// as atomically accessed; keyed by analysis.FieldKey.
type AtomicFact struct{}

// AFact marks AtomicFact as a fact.
func (*AtomicFact) AFact() {}

// ForeignAtomics lists atomic accesses this package performs on fields
// of types declared in other in-module packages, as
// "<declaring-pkg>\x00<Type.field>" entries.
type ForeignAtomics struct {
	Keys []string
}

// AFact marks ForeignAtomics as a fact.
func (*ForeignAtomics) AFact() {}

func run(pass *analysis.Pass) error {
	if _, inModule := analysis.RelPkgPath(pass.Pkg.Path()); !inModule {
		return nil
	}

	// Phase 1: every &x.f argument to a sync/atomic call names an atomic
	// field. The selector itself is sanctioned — it is the atomic access.
	atomicKeys := map[string]bool{} // "<declPkg>\x00<Type.field>"
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				declPkg, key, ok := fieldOf(pass, sel)
				if !ok {
					continue
				}
				sanctioned[sel] = true
				atomicKeys[declPkg+"\x00"+key] = true
			}
			return true
		})
	}

	// Phase 2: export. Fields of our own types go out as field facts;
	// atomic accesses to imported in-module types go out as a package
	// fact so packages that never import us still learn of them.
	var foreign []string
	for combined := range atomicKeys {
		declPkg, key, _ := strings.Cut(combined, "\x00")
		if declPkg == pass.Pkg.Path() {
			pass.ExportFactByKey(key, &AtomicFact{})
		} else if _, in := analysis.RelPkgPath(declPkg); in {
			foreign = append(foreign, combined)
		}
	}
	if len(foreign) > 0 {
		sort.Strings(foreign)
		pass.ExportPackageFact(&ForeignAtomics{Keys: foreign})
	}
	for _, pf := range pass.AllPackageFacts(&ForeignAtomics{}) {
		for _, k := range pf.Fact.(*ForeignAtomics).Keys {
			atomicKeys[k] = true
		}
	}
	isAtomic := func(declPkg, key string) bool {
		if atomicKeys[declPkg+"\x00"+key] {
			return true
		}
		var f AtomicFact
		return pass.ImportFactByKey(declPkg, key, &f)
	}

	// Phase 3: report plain accesses. Constructors are exempt — stores
	// before the value escapes cannot race.
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isConstructor(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				declPkg, key, ok := fieldOf(pass, sel)
				if !ok || !isAtomic(declPkg, key) {
					return true
				}
				rel, _ := analysis.RelPkgPath(declPkg)
				pass.Reportf(sel.Pos(),
					"plain access to %s.%s, a field accessed via sync/atomic elsewhere: this races with those atomic operations — use sync/atomic here too (//lint:allow atomicfield <why> if provably single-threaded)",
					rel, key)
				return true
			})
		}
	}
	return nil
}

// fieldOf resolves sel to its declaring package path and
// analysis.FieldKey when it selects a field of a named struct type.
func fieldOf(pass *analysis.Pass, sel *ast.SelectorExpr) (declPkg, key string, ok bool) {
	s, found := pass.TypesInfo.Selections[sel]
	if !found || s.Kind() != types.FieldVal {
		return "", "", false
	}
	named := analysis.NamedType(s.Recv())
	if named == nil || named.Obj().Pkg() == nil {
		return "", "", false
	}
	return named.Obj().Pkg().Path(), analysis.FieldKey(named.Obj().Name(), s.Obj().Name()), true
}

// isAtomicCall reports whether call invokes a sync/atomic function.
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// isConstructor matches the initialization functions whose plain stores
// happen before the value is published.
func isConstructor(name string) bool {
	return name == "init" || strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}
