package atomicfield_test

import (
	"testing"

	"clustereval/internal/analysis/analysistest"
	"clustereval/internal/analysis/atomicfield"
)

func Test(t *testing.T) {
	// Order matters: internal/fleet's run publishes the foreign-upgrade
	// package fact that internal/service's run consumes.
	analysistest.Run(t, atomicfield.Analyzer,
		"internal/journal",
		"internal/fleet",
		"internal/service",
	)
}
