// Package vetdriver runs a set of analyzers under the `go vet -vettool`
// unit-checker protocol, reimplemented on the standard library (the
// module deliberately has no dependency on golang.org/x/tools).
//
// The protocol, as spoken by cmd/go:
//
//   - `tool -V=full` must print "<tool> version devel ... buildID=<hash>"
//     (cmd/go folds the line into its action cache key, so rebuilt tools
//     invalidate cached vet results);
//   - `tool -flags` must print a JSON description of the tool's flags
//     (this tool has one: -json), which cmd/go then accepts on the
//     `go vet` command line and forwards to every tool invocation;
//   - `tool [-json] <dir>/vet.cfg` must analyze the one package described
//     by the JSON config: parse cfg.GoFiles, type-check against the
//     export data of the already-compiled dependencies (cfg.PackageFile),
//     run, write the facts file cfg.VetxOutput, report findings, and exit
//     2 when there are findings, 0 otherwise.
//
// Facts: analyzers that declare FactTypes export per-object and
// per-package summaries while a package is analyzed; the driver
// serializes them into cfg.VetxOutput and, when analyzing a dependent
// package, decodes every file in cfg.PackageVetx back into the shared
// FactDB. cmd/go schedules dependency vets before dependents, so facts
// always flow bottom-up over the package graph.
//
// Dependency packages arrive with VetxOnly=true — vet only wants their
// facts. For packages of this module the driver runs the full suite in
// facts-only mode (diagnostics are the importing run's job); packages
// outside the module (the stdlib) carry no clusterlint facts, so those
// invocations write an empty facts file and return immediately.
//
// Exit codes are stable: 0 clean (or -json, whose findings live in the
// payload), 1 internal error (bad config, typecheck failure the config
// does not excuse), 2 unsuppressed findings in text mode.
package vetdriver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"

	"clustereval/internal/analysis"
)

// vetConfig mirrors the JSON config cmd/go hands a vettool. Fields the
// driver does not consume (NonGoFiles, ...) are listed so a future
// reader sees the full wire format in one place.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point cmd/clusterlint wraps. It never returns.
func Main(analyzers []*analysis.Analyzer) {
	progname := os.Args[0]
	args := os.Args[1:]
	if len(args) == 1 {
		switch args[0] {
		case "-V=full":
			printVersion(progname)
			os.Exit(0)
		case "-V":
			fmt.Printf("%s version devel\n", progname)
			os.Exit(0)
		case "-flags":
			// The one pass-through flag cmd/go should accept on the
			// `go vet` command line and forward to tool invocations.
			fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit machine-readable JSON diagnostics (includes suppressed findings) and exit 0"}]`)
			os.Exit(0)
		case "help", "-help", "--help", "-h":
			printHelp(progname, analyzers)
			os.Exit(0)
		}
	}
	jsonOut := false
	for len(args) > 0 {
		switch args[0] {
		case "-json", "-json=true", "--json", "--json=true":
			jsonOut = true
			args = args[1:]
			continue
		case "-json=false", "--json=false":
			jsonOut = false
			args = args[1:]
			continue
		}
		break
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr,
			"usage: go vet -vettool=%s [-json] ./...\n(the tool is driven by go vet; it does not accept package patterns itself)\n",
			progname)
		os.Exit(1)
	}
	analysis.RegisterFactTypes(analyzers)
	diags, fset, pkgPath, err := runConfig(args[0], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "clusterlint: %v\n", err)
		os.Exit(1)
	}
	if jsonOut {
		emitJSON(os.Stdout, pkgPath, fset, diags)
		os.Exit(0)
	}
	unsuppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		unsuppressed++
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if unsuppressed > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// jsonDiagnostic is the -json wire form of one finding. Posn keeps the
// go/analysis "file:line:col" convention for editors that parse the
// unitchecker format; File/Line/Col carry the same position pre-split.
type jsonDiagnostic struct {
	Posn          string `json:"posn"`
	File          string `json:"file"`
	Line          int    `json:"line"`
	Col           int    `json:"col"`
	Analyzer      string `json:"analyzer"`
	Message       string `json:"message"`
	Suppressed    bool   `json:"suppressed"`
	Justification string `json:"justification,omitempty"`
}

// emitJSON writes the unitchecker-shaped payload for one package:
// {"<pkg>": {"<analyzer>": [diagnostics...]}}. go vet concatenates the
// per-package objects on stdout.
func emitJSON(w io.Writer, pkgPath string, fset *token.FileSet, diags []analysis.Diagnostic) {
	byAnalyzer := map[string][]jsonDiagnostic{}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiagnostic{
			Posn:          pos.String(),
			File:          pos.Filename,
			Line:          pos.Line,
			Col:           pos.Column,
			Analyzer:      d.Analyzer,
			Message:       d.Message,
			Suppressed:    d.Suppressed,
			Justification: d.Justification,
		})
	}
	payload := map[string]map[string][]jsonDiagnostic{pkgPath: byAnalyzer}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	enc.Encode(payload)
}

// printVersion emits the version line cmd/go parses for its cache key:
// name, "version devel", and a buildID derived from the executable bytes.
func printVersion(progname string) {
	h := sha256.New()
	if exe, err := os.Open(progname); err == nil {
		io.Copy(h, exe)
		exe.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
}

func printHelp(progname string, analyzers []*analysis.Analyzer) {
	fmt.Printf("%s: static analysis suite for the clustereval module\n\n", progname)
	fmt.Printf("Run it through go vet:\n\n\tgo vet -vettool=%s [-json] ./...\n\nAnalyzers:\n\n", progname)
	for _, a := range analyzers {
		fmt.Printf("%s:\n%s\n\n", a.Name, strings.TrimSpace(a.Doc))
	}
	fmt.Println("Suppress a single finding with `//lint:allow <analyzer> <justification>`")
	fmt.Println("on the flagged line or the line above it; see TESTING.md.")
}

// runConfig analyzes the one package described by cfgPath. Returned
// diagnostics are annotated (suppressed findings included, flagged);
// the caller decides the output policy.
func runConfig(cfgPath string, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, *token.FileSet, string, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, nil, "", err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, nil, "", fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	// go vet caches per-package results keyed on the facts output, so the
	// file must exist on every exit path; successful runs overwrite it
	// with the real fact payload below.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, nil, "", fmt.Errorf("writing facts output: %w", err)
		}
	}
	if _, inModule := analysis.RelPkgPath(cfg.ImportPath); cfg.VetxOnly && !inModule {
		return nil, nil, cfg.ImportPath, nil // stdlib dependency: no clusterlint facts
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil, cfg.ImportPath, nil
			}
			return nil, nil, "", err
		}
		files = append(files, f)
	}

	tc := &types.Config{
		Importer:  newExportImporter(fset, cfg),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
	}
	info := analysis.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil, cfg.ImportPath, nil
		}
		return nil, nil, "", fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	// Rehydrate the facts of every dependency this run can see. Files
	// written by fact-free invocations (the stdlib) are empty and
	// contribute nothing.
	facts := analysis.NewFactDB()
	for depPath, vetxFile := range cfg.PackageVetx {
		payload, err := os.ReadFile(vetxFile)
		if err != nil {
			continue // missing facts degrade precision, never correctness
		}
		if err := facts.DecodeFacts(depPath, payload); err != nil {
			return nil, nil, "", err
		}
	}

	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := analysis.NewPass(a, fset, files, pkg, info, facts)
		if err := a.Run(pass); err != nil {
			return nil, nil, "", fmt.Errorf("analyzer %s on %s: %w", a.Name, cfg.ImportPath, err)
		}
		diags = append(diags, pass.Diagnostics()...)
	}

	if cfg.VetxOutput != "" {
		payload, err := facts.EncodeFacts(cfg.ImportPath)
		if err != nil {
			return nil, nil, "", err
		}
		if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
			return nil, nil, "", fmt.Errorf("writing facts output: %w", err)
		}
	}
	if cfg.VetxOnly {
		return nil, nil, cfg.ImportPath, nil // facts harvested; diagnostics are the in-pattern run's job
	}

	diags = analysis.Annotate(fset, files, diags)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, fset, cfg.ImportPath, nil
}

// newExportImporter builds the importer the type checker uses: import
// paths map through cfg.ImportMap onto canonical package paths, whose
// compiled export data cmd/go already listed in cfg.PackageFile.
func newExportImporter(fset *token.FileSet, cfg *vetConfig) types.Importer {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	under := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return under.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
