// Package suite assembles the clusterlint analyzers in their canonical
// order. cmd/clusterlint and the module-wide smoke tests both consume
// this list so the binary and the tests can never drift apart.
package suite

import (
	"clustereval/internal/analysis"
	"clustereval/internal/analysis/atomicfield"
	"clustereval/internal/analysis/canonkey"
	"clustereval/internal/analysis/ctxflow"
	"clustereval/internal/analysis/determinism"
	"clustereval/internal/analysis/detflow"
	"clustereval/internal/analysis/errwrap"
	"clustereval/internal/analysis/goroleak"
	"clustereval/internal/analysis/lockorder"
	"clustereval/internal/analysis/unitsafe"
)

// Analyzers is the full clusterlint suite, ordered roughly from the
// broadest invariant (determinism) to the most local (errwrap). The
// concurrency analyzers (lockorder, goroleak, atomicfield) and the
// taint-based detflow compute cross-function facts, so they sit after
// the purely local checks.
var Analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	detflow.Analyzer,
	ctxflow.Analyzer,
	canonkey.Analyzer,
	lockorder.Analyzer,
	goroleak.Analyzer,
	atomicfield.Analyzer,
	unitsafe.Analyzer,
	errwrap.Analyzer,
}
