// Package suite assembles the clusterlint analyzers in their canonical
// order. cmd/clusterlint and the module-wide smoke tests both consume
// this list so the binary and the tests can never drift apart.
package suite

import (
	"clustereval/internal/analysis"
	"clustereval/internal/analysis/canonkey"
	"clustereval/internal/analysis/ctxflow"
	"clustereval/internal/analysis/determinism"
	"clustereval/internal/analysis/errwrap"
	"clustereval/internal/analysis/unitsafe"
)

// Analyzers is the full clusterlint suite, ordered roughly from the
// broadest invariant (determinism) to the most local (errwrap).
var Analyzers = []*analysis.Analyzer{
	determinism.Analyzer,
	ctxflow.Analyzer,
	canonkey.Analyzer,
	unitsafe.Analyzer,
	errwrap.Analyzer,
}
