package suite_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles cmd/clusterlint into dir and returns the binary
// path and the module root it was built from.
func buildTool(t *testing.T, dir string) (tool, moduleRoot string) {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	moduleRoot = strings.TrimSpace(string(out))
	tool = filepath.Join(dir, "clusterlint")
	cmd := exec.Command("go", "build", "-o", tool, "./cmd/clusterlint")
	cmd.Dir = moduleRoot
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building clusterlint: %v\n%s", err, b)
	}
	return tool, moduleRoot
}

// vet runs `go vet -vettool=tool ./...` in dir.
func vet(tool, dir string) (stderr string, err error) {
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stderr = &buf
	err = cmd.Run()
	return buf.String(), err
}

// TestModuleIsClean is the self-hosting guarantee: the suite, run the
// same way `make lint` runs it, finds nothing in the tree at HEAD.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go vet over the whole module")
	}
	tool, root := buildTool(t, t.TempDir())
	if stderr, err := vet(tool, root); err != nil {
		t.Fatalf("clusterlint is not clean at HEAD:\n%s", stderr)
	}
}

// writeTree populates a scratch module rooted at dir.
func writeTree(t *testing.T, dir string) func(rel, content string) {
	t.Helper()
	return func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSeededViolationsFail seeds one violation per analyzer family — a
// time.Now call in internal/mpisim, an unsorted map range in a
// canonicalization function, an inconsistent lock pair, an exit-less
// goroutine and a mixed atomic/plain field — into a scratch module with
// this module's path, and requires a non-zero go vet exit naming every
// analyzer.
func TestSeededViolationsFail(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and a scratch module")
	}
	tool, _ := buildTool(t, t.TempDir())

	scratch := t.TempDir()
	write := writeTree(t, scratch)
	write("go.mod", "module clustereval\n\ngo 1.22\n")
	write("internal/mpisim/bad.go", `package mpisim

import "time"

func Stamp() time.Time { return time.Now() }
`)
	write("internal/experiment/canon.go", `package experiment

import (
	"fmt"
	"strings"
)

func Canonicalize(params map[string]string) string {
	var b strings.Builder
	for k, v := range params {
		fmt.Fprintf(&b, "%s=%s;", k, v)
	}
	return b.String()
}
`)
	write("internal/fleet/bad.go", `package fleet

import (
	"sync"
	"sync/atomic"
)

type pool struct{ mu sync.Mutex }
type shard struct{ mu sync.Mutex }

func One(p *pool, s *shard) {
	p.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	p.mu.Unlock()
}

func Two(p *pool, s *shard) {
	s.mu.Lock()
	p.mu.Lock()
	p.mu.Unlock()
	s.mu.Unlock()
}

func Run() {
	go func() {
		for {
		}
	}()
}

type counter struct{ n int64 }

func (c *counter) inc() { atomic.AddInt64(&c.n, 1) }

func (c *counter) read() int64 { return c.n }
`)

	stderr, err := vet(tool, scratch)
	if err == nil {
		t.Fatal("go vet exited 0 over seeded violations")
	}
	for _, needle := range []string{
		"[determinism]", "[canonkey]",
		"time.Now", "map iteration order is random",
		"[lockorder]", "inconsistent lock-pair ordering",
		"[goroleak]", "no reachable exit path",
		"[atomicfield]", "accessed via sync/atomic elsewhere",
	} {
		if !strings.Contains(stderr, needle) {
			t.Errorf("vet output missing %q:\n%s", needle, stderr)
		}
	}
}

// TestJSONMode drives clusterlint the way tooling does: `go vet
// -vettool=... -json ./...` must exit 0, keep stderr free of findings,
// and emit one decodable {"pkg": {"analyzer": [diagnostics]}} object
// per package on stdout — including suppressed findings, flagged with
// their justification, which the text mode drops.
func TestJSONMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and a scratch module")
	}
	tool, _ := buildTool(t, t.TempDir())

	scratch := t.TempDir()
	write := writeTree(t, scratch)
	write("go.mod", "module clustereval\n\ngo 1.22\n")
	write("internal/mpisim/bad.go", `package mpisim

import "time"

func Stamp() time.Time { return time.Now() }

func Waived() time.Time {
	//lint:allow determinism scratch fixture exercising the JSON suppressed field
	return time.Now()
}
`)

	cmd := exec.Command("go", "vet", "-vettool="+tool, "-json", "./...")
	cmd.Dir = scratch
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("go vet -json exited non-zero: %v\nstderr:\n%s", err, stderr.String())
	}

	// go vet relays the vettool's stdout onto its own stderr, prefixed
	// with `# <package>` header lines; strip those before decoding.
	var jsonText strings.Builder
	for _, line := range strings.Split(stdout.String()+stderr.String(), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		jsonText.WriteString(line)
		jsonText.WriteByte('\n')
	}

	type diag struct {
		Posn          string `json:"posn"`
		File          string `json:"file"`
		Line          int    `json:"line"`
		Analyzer      string `json:"analyzer"`
		Message       string `json:"message"`
		Suppressed    bool   `json:"suppressed"`
		Justification string `json:"justification"`
	}
	var all []diag
	dec := json.NewDecoder(strings.NewReader(jsonText.String()))
	for dec.More() {
		var payload map[string]map[string][]diag
		if err := dec.Decode(&payload); err != nil {
			t.Fatalf("decoding -json output: %v", err)
		}
		for _, byAnalyzer := range payload {
			for _, ds := range byAnalyzer {
				all = append(all, ds...)
			}
		}
	}
	var live, waived int
	for _, d := range all {
		if d.Analyzer != "determinism" || d.File == "" || d.Line == 0 || d.Posn == "" {
			t.Errorf("malformed diagnostic: %+v", d)
		}
		if d.Suppressed {
			waived++
			if !strings.Contains(d.Justification, "scratch fixture") {
				t.Errorf("suppressed diagnostic lost its justification: %+v", d)
			}
		} else {
			live++
		}
	}
	if live != 1 || waived != 1 {
		t.Errorf("want 1 live + 1 suppressed determinism finding, got %d live %d suppressed:\n%+v", live, waived, all)
	}
}

// TestDetflowCatchesCrossFunction is the acceptance case for the taint
// engine: the wall-clock read hides one call away, in a package outside
// the determinism analyzer's simulation scope, and only surfaces where
// its value reaches the canonical encoder. The old determinism analyzer
// provably misses it — the test asserts detflow fires and determinism
// stays silent.
func TestDetflowCatchesCrossFunction(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and a scratch module")
	}
	tool, _ := buildTool(t, t.TempDir())

	scratch := t.TempDir()
	write := writeTree(t, scratch)
	write("go.mod", "module clustereval\n\ngo 1.22\n")
	// internal/report is not a simulation package: determinism never
	// looks at it, and the file below has no time call anyway.
	write("internal/report/stamp.go", `package report

import "time"

func Stamp() string { return time.Now().Format(time.RFC3339) }
`)
	// internal/experiment IS in the determinism scope, but this file
	// contains no direct nondeterminism source — only the call chain.
	write("internal/experiment/key.go", `package experiment

import (
	"strings"

	"clustereval/internal/report"
)

func Canonicalize(parts ...string) string { return strings.Join(parts, "|") }

func Key() string { return Canonicalize("spec", report.Stamp()) }
`)

	stderr, err := vet(tool, scratch)
	if err == nil {
		t.Fatal("go vet exited 0 over the cross-function determinism leak")
	}
	for _, needle := range []string{
		"[detflow]", "the return value of Stamp", "reaches canonical encoder",
	} {
		if !strings.Contains(stderr, needle) {
			t.Errorf("vet output missing %q:\n%s", needle, stderr)
		}
	}
	if strings.Contains(stderr, "[determinism]") {
		t.Errorf("determinism analyzer unexpectedly fired on the cross-function case:\n%s", stderr)
	}
}
