package suite_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles cmd/clusterlint into dir and returns the binary
// path and the module root it was built from.
func buildTool(t *testing.T, dir string) (tool, moduleRoot string) {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	moduleRoot = strings.TrimSpace(string(out))
	tool = filepath.Join(dir, "clusterlint")
	cmd := exec.Command("go", "build", "-o", tool, "./cmd/clusterlint")
	cmd.Dir = moduleRoot
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building clusterlint: %v\n%s", err, b)
	}
	return tool, moduleRoot
}

// vet runs `go vet -vettool=tool ./...` in dir.
func vet(tool, dir string) (stderr string, err error) {
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stderr = &buf
	err = cmd.Run()
	return buf.String(), err
}

// TestModuleIsClean is the self-hosting guarantee: the suite, run the
// same way `make lint` runs it, finds nothing in the tree at HEAD.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("runs go vet over the whole module")
	}
	tool, root := buildTool(t, t.TempDir())
	if stderr, err := vet(tool, root); err != nil {
		t.Fatalf("clusterlint is not clean at HEAD:\n%s", stderr)
	}
}

// TestSeededViolationsFail seeds the two violations the acceptance
// criteria name — a time.Now call in internal/mpisim and an unsorted
// map range in a canonicalization function — into a scratch module with
// this module's path, and requires a non-zero go vet exit naming both
// analyzers.
func TestSeededViolationsFail(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the vettool and a scratch module")
	}
	tool, _ := buildTool(t, t.TempDir())

	scratch := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(scratch, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module clustereval\n\ngo 1.22\n")
	write("internal/mpisim/bad.go", `package mpisim

import "time"

func Stamp() time.Time { return time.Now() }
`)
	write("internal/experiment/canon.go", `package experiment

import (
	"fmt"
	"strings"
)

func Canonicalize(params map[string]string) string {
	var b strings.Builder
	for k, v := range params {
		fmt.Fprintf(&b, "%s=%s;", k, v)
	}
	return b.String()
}
`)

	stderr, err := vet(tool, scratch)
	if err == nil {
		t.Fatal("go vet exited 0 over seeded violations")
	}
	for _, needle := range []string{
		"[determinism]", "[canonkey]",
		"time.Now", "map iteration order is random",
	} {
		if !strings.Contains(stderr, needle) {
			t.Errorf("vet output missing %q:\n%s", needle, stderr)
		}
	}
}
