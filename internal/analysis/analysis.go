// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package and reports Diagnostics. The module is stdlib-only
// by policy, so rather than importing x/tools this package provides just
// the slice of it that cmd/clusterlint needs — enough to write unit
// analyzers, test them against fixtures (analysistest), and run them
// under `go vet -vettool` (vetdriver).
//
// The analyzers themselves live in subpackages (determinism, ctxflow,
// canonkey, unitsafe, errwrap) and are assembled by the suite package.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check. Run inspects a single package via
// the Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name> <justification>` suppression comments. It must
	// be a valid identifier.
	Name string
	// Doc is the human-readable description printed by `clusterlint help`.
	Doc string
	// Run performs the analysis. A returned error aborts the whole run
	// (reserve it for internal failures, not findings).
	Run func(*Pass) error
	// FactTypes lists prototypes (pointers to zero structs) of every
	// Fact this analyzer exports, so drivers can register them with gob
	// before vetx payloads are written or read. An analyzer with no
	// FactTypes sees an empty facts view.
	FactTypes []Fact
}

// Pass carries one type-checked package through an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	facts *FactDB
	diags []Diagnostic
}

// Diagnostic is one finding, positioned in the analyzed package.
// Suppressed and Justification are filled in by Annotate when a
// `//lint:allow` waiver covers the finding; text output drops
// suppressed findings, `-json` output reports them flagged.
type Diagnostic struct {
	Pos           token.Pos
	Message       string
	Analyzer      string
	Suppressed    bool
	Justification string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Diagnostics returns the findings reported so far.
func (p *Pass) Diagnostics() []Diagnostic { return p.diags }

// NewPass assembles a Pass for one package. Callers (vetdriver,
// analysistest) run pass.Analyzer.Run(pass) themselves. facts may be
// nil, in which case every fact import misses and exports are dropped —
// analyzers must degrade to intra-package precision, not crash.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *FactDB) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, facts: facts}
}

// NewInfo returns a types.Info with every map allocated, as analyzers
// expect.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// PkgFunc resolves a call to a package-level function and returns it, or
// nil when the callee is anything else (method, local closure, builtin,
// conversion). Aliased imports resolve correctly because the lookup goes
// through the type checker, not the source text.
func (p *Pass) PkgFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, ok := p.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return nil // method, not a package function
	}
	return fn
}

// CallTo reports whether call invokes pkgPath.name (a package-level
// function).
func (p *Pass) CallTo(call *ast.CallExpr, pkgPath, name string) bool {
	fn := p.PkgFunc(call)
	return fn != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// CalleeName returns the bare name of the called function or method
// ("Printf", "Write"), or "" when it has no name (calls through function
// values bound to composite expressions).
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// NamedType unwraps pointers and returns the named type beneath t, or
// nil when t is not (a pointer to) a named type.
func NamedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// MethodOf resolves a call to a method and returns it, or nil when the
// callee is anything else. The complement of PkgFunc.
func (p *Pass) MethodOf(call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if fn.Type().(*types.Signature).Recv() == nil {
		return nil
	}
	return fn
}

// IsMapType reports whether the expression's static type is (or points
// to) a map.
func (p *Pass) IsMapType(e ast.Expr) bool {
	t := p.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
