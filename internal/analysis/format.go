package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// FormatCallArg maps fmt-style formatting functions onto the index of
// their format-string argument. Analyzers that inspect format verbs
// (canonkey, errwrap) share it.
var FormatCallArg = map[string]int{
	"Sprintf": 0, "Errorf": 0, "Printf": 0,
	"Fprintf": 1, "Appendf": 1,
}

// Verb is one parsed format directive and the index of the argument it
// consumes.
type Verb struct {
	Verb     rune
	ArgIndex int
}

// FormatLiteral extracts the unquoted format string of a fmt-style call
// whose format argument sits at index fmtArg, along with the trailing
// operand expressions. It returns ok=false when the format is not a
// string literal (dynamic formats are out of reach for static verb
// pairing).
func FormatLiteral(call *ast.CallExpr, fmtArg int) (format string, operands []ast.Expr, ok bool) {
	if len(call.Args) <= fmtArg {
		return "", nil, false
	}
	lit, isLit := ast.Unparen(call.Args[fmtArg]).(*ast.BasicLit)
	if !isLit {
		return "", nil, false
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", nil, false
	}
	return format, call.Args[fmtArg+1:], true
}

// ParseVerbs walks a fmt format string, pairing verbs with sequential
// argument indexes. Explicit argument indexes (%[1]v) abort the parse
// and return nil — none appear in this codebase, and a partial mapping
// would misattribute findings.
func ParseVerbs(format string) []Verb {
	var out []Verb
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && strings.ContainsRune("+-# 0123456789.*", rune(format[i])) {
			if format[i] == '*' {
				arg++ // star width/precision consumes an argument
			}
			i++
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%':
			continue
		case '[':
			return nil // explicit argument index: bail out
		default:
			out = append(out, Verb{Verb: rune(format[i]), ArgIndex: arg})
			arg++
		}
	}
	return out
}
