package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTableIRendering(t *testing.T) {
	e := New()
	tb := e.TableI()
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"A64FX", "Intel Xeon Platinum 8160", "70.40", "67.20",
		"3379.20", "3225.60", "1024", "256", "TofuD", "Intel OmniPath",
		"6.80", "12.00", "192", "3456",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestTableIIAndIII(t *testing.T) {
	e := New()
	var buf bytes.Buffer
	if err := e.TableII().Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "-Kzfill=100") {
		t.Error("Table II missing Fujitsu tuning flags")
	}
	buf.Reset()
	if err := e.TableIII().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, app := range []string{"Alya", "NEMO", "Gromacs", "OpenIFS", "WRF"} {
		if strings.Count(out, app) < 2 {
			t.Errorf("Table III should list %s twice", app)
		}
	}
}

func TestTableIVAgainstPaper(t *testing.T) {
	e := New()
	rows, err := e.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Row{}
	order := []string{}
	for _, r := range rows {
		byApp[r.App] = r
		order = append(order, r.App)
	}
	wantOrder := []string{"LINPACK", "HPCG", "Alya", "OpenIFS", "Gromacs", "WRF", "NEMO"}
	for i, app := range wantOrder {
		if order[i] != app {
			t.Fatalf("row order %v, want %v", order, wantOrder)
		}
	}

	// The paper's Table IV, with the tolerances DESIGN.md sets out.
	// Entries the model knowingly deviates on (documented outliers) carry
	// wider tolerances.
	type expect struct {
		value float64
		tol   float64
	}
	paper := map[string]map[int]expect{
		"LINPACK": {1: {1.25, 0.05}, 16: {1.28, 0.06}, 32: {1.38, 0.09},
			64: {1.35, 0.07}, 128: {1.70, 0.35}, 192: {1.40, 0.07}},
		"HPCG":    {1: {2.50, 0.13}, 192: {3.24, 0.20}},
		"Alya":    {16: {0.30, 0.03}, 32: {0.31, 0.03}, 64: {0.37, 0.08}},
		"OpenIFS": {1: {0.31, 0.02}, 32: {0.28, 0.025}, 64: {0.31, 0.025}, 128: {0.39, 0.025}},
		"Gromacs": {1: {0.32, 0.02}, 16: {0.36, 0.025}, 32: {0.38, 0.025},
			64: {0.43, 0.04}, 128: {0.54, 0.06}, 192: {0.33, 0.40}},
		"WRF":  {1: {0.49, 0.04}, 16: {0.46, 0.02}, 32: {0.60, 0.16}, 64: {0.64, 0.20}},
		"NEMO": {16: {0.56, 0.04}},
	}
	np := map[string][]int{
		"Alya": {1}, "OpenIFS": {16}, "NEMO": {1},
	}
	for app, cols := range paper {
		row, ok := byApp[app]
		if !ok {
			t.Fatalf("missing row %s", app)
		}
		for _, cell := range row.Cells {
			if want, ok := cols[cell.Nodes]; ok {
				if cell.NP || cell.NA {
					t.Errorf("%s@%d: got %s, want %.2f", app, cell.Nodes, cell.String(), want.value)
					continue
				}
				if math.Abs(cell.Speedup-want.value) > want.tol {
					t.Errorf("%s@%d: speedup %.3f, paper %.2f (tol %.2f)",
						app, cell.Nodes, cell.Speedup, want.value, want.tol)
				}
			}
		}
		for _, n := range np[app] {
			for _, cell := range row.Cells {
				if cell.Nodes == n && !cell.NP {
					t.Errorf("%s@%d: want NP, got %s", app, n, cell.String())
				}
			}
		}
	}

	// Conclusion sanity: synthetic benchmarks speed up (LINPACK up to
	// ~1.7x, HPCG up to ~3.4x); applications slow down (1.6x-3.4x).
	for _, cell := range byApp["LINPACK"].Cells {
		if !cell.NA && !cell.NP && cell.Speedup <= 1 {
			t.Errorf("LINPACK@%d: CTE-Arm should win (%.2f)", cell.Nodes, cell.Speedup)
		}
	}
	for _, app := range []string{"Alya", "OpenIFS", "Gromacs", "WRF", "NEMO"} {
		for _, cell := range byApp[app].Cells {
			if !cell.NA && !cell.NP && cell.Speedup >= 1 {
				t.Errorf("%s@%d: applications should slow down (%.2f)", app, cell.Nodes, cell.Speedup)
			}
		}
	}
}

func TestRenderTableIV(t *testing.T) {
	e := New()
	rows, err := e.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderTableIV(rows).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "NP") || !strings.Contains(out, "N/A") {
		t.Errorf("Table IV missing NP/N/A markers:\n%s", out)
	}
	if !strings.Contains(out, "LINPACK") || !strings.Contains(out, "NEMO") {
		t.Errorf("Table IV missing rows:\n%s", out)
	}
}

func TestConclusionsAllHold(t *testing.T) {
	e := New()
	findings, err := e.Conclusions()
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 7 {
		t.Fatalf("%d findings, want 7", len(findings))
	}
	for _, f := range findings {
		if !f.Holds {
			t.Errorf("conclusion does not hold: %s (%s)", f.Statement, f.Evidence)
		}
		if f.Evidence == "" {
			t.Errorf("conclusion without evidence: %s", f.Statement)
		}
	}
}

func TestCellString(t *testing.T) {
	if (Cell{NP: true}).String() != "NP" {
		t.Error("NP cell")
	}
	if (Cell{NA: true}).String() != "N/A" {
		t.Error("NA cell")
	}
	if (Cell{Speedup: 1.234}).String() != "1.23" {
		t.Error("value cell")
	}
}
