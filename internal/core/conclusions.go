package core

import (
	"fmt"

	"clustereval/internal/apps/alya"
	"clustereval/internal/machine"
	"clustereval/internal/perfmodel"
	"clustereval/internal/toolchain"
)

// Finding is one conclusion of the paper's Section VI, evaluated against
// the reproduction's own outputs.
type Finding struct {
	Statement string
	Holds     bool
	Evidence  string
}

// Conclusions re-derives the paper's concluding claims from the models and
// reports whether each holds in the reproduction.
func (e *Evaluation) Conclusions() ([]Finding, error) {
	rows, err := e.TableIV()
	if err != nil {
		return nil, err
	}
	byApp := map[string]Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}

	var out []Finding

	// 1. "Synthetic benchmarks have a speedup of up to 1.7x for LINPACK
	//    and up to 3.4x for HPCG."
	maxLin, maxHPCG := 0.0, 0.0
	for _, c := range byApp["LINPACK"].Cells {
		if !c.NA && !c.NP && c.Speedup > maxLin {
			maxLin = c.Speedup
		}
	}
	for _, c := range byApp["HPCG"].Cells {
		if !c.NA && !c.NP && c.Speedup > maxHPCG {
			maxHPCG = c.Speedup
		}
	}
	out = append(out, Finding{
		Statement: "synthetic benchmarks favour CTE-Arm",
		Holds:     maxLin > 1 && maxHPCG > 1,
		Evidence:  fmt.Sprintf("LINPACK up to %.2fx, HPCG up to %.2fx", maxLin, maxHPCG),
	})

	// 2. "The HPC applications tested suffer a slow-down between 1.6x and
	//    3.4x compared to MareNostrum 4."
	minSlow, maxSlow := 1e9, 0.0
	for _, app := range []string{"Alya", "OpenIFS", "Gromacs", "WRF", "NEMO"} {
		for _, c := range byApp[app].Cells {
			if c.NA || c.NP {
				continue
			}
			slow := 1 / c.Speedup
			if slow < minSlow {
				minSlow = slow
			}
			if slow > maxSlow {
				maxSlow = slow
			}
		}
	}
	out = append(out, Finding{
		Statement: "applications slow down by roughly 1.6x-3.4x",
		Holds:     minSlow >= 1.3 && maxSlow <= 3.8,
		Evidence:  fmt.Sprintf("slowdowns span %.2fx to %.2fx", minSlow, maxSlow),
	})

	// 3. "The compiler could not leverage the SVE unit ... performance is
	//    delivered by the scalar core."
	build, err := toolchain.Compile(toolchain.GNUArmSVE(), e.Arm, "Alya")
	if err != nil {
		return nil, err
	}
	out = append(out, Finding{
		Statement: "GNU-compiled application loops fall back to the scalar core",
		Holds:     build.VectorISA(toolchain.AppLoop) == machine.ISAScalar,
		Evidence:  fmt.Sprintf("app-loop ISA: %s", build.VectorISA(toolchain.AppLoop)),
	})

	// 4. "The weaker scalar core is somewhat compensated by the fast
	//    memory subsystem (e.g. the Solver phase of Alya)."
	ma, err := alya.NewModel(e.Arm, alya.TestCaseB())
	if err != nil {
		return nil, err
	}
	mm, err := alya.NewModel(e.Ref, alya.TestCaseB())
	if err != nil {
		return nil, err
	}
	asmA, solA, _, err := ma.StepTimes(12)
	if err != nil {
		return nil, err
	}
	asmM, solM, _, err := mm.StepTimes(12)
	if err != nil {
		return nil, err
	}
	asmGap := float64(asmA) / float64(asmM)
	solGap := float64(solA) / float64(solM)
	out = append(out, Finding{
		Statement: "HBM compensates on memory-bound phases (Alya Solver vs Assembly)",
		Holds:     solGap < 0.6*asmGap,
		Evidence:  fmt.Sprintf("assembly gap %.2fx vs solver gap %.2fx", asmGap, solGap),
	})

	// 5. "Single node memory limitations: Alya, OpenIFS and NEMO can not
	//    be run with a low number of nodes (NP in Table IV)."
	npSeen := true
	for _, app := range []string{"Alya", "OpenIFS", "NEMO"} {
		hasNP := false
		for _, c := range byApp[app].Cells {
			if c.NP {
				hasNP = true
			}
		}
		npSeen = npSeen && hasNP
	}
	out = append(out, Finding{
		Statement: "memory floors make some applications impossible on few nodes",
		Holds:     npSeen,
		Evidence:  "NP entries present for Alya, OpenIFS and NEMO",
	})

	// 6. "HPCG ... does not seem to predict/mimic the trend of any of the
	//    applications tested": HPCG says CTE-Arm wins, every application
	//    says it loses.
	hpcgWins := true
	for _, c := range byApp["HPCG"].Cells {
		if !c.NA && !c.NP && c.Speedup <= 1 {
			hpcgWins = false
		}
	}
	appsLose := true
	for _, app := range []string{"Alya", "OpenIFS", "Gromacs", "WRF", "NEMO"} {
		for _, c := range byApp[app].Cells {
			if !c.NA && !c.NP && c.Speedup >= 1 {
				appsLose = false
			}
		}
	}
	out = append(out, Finding{
		Statement: "HPCG does not predict application behaviour",
		Holds:     hpcgWins && appsLose,
		Evidence:  "HPCG > 1x everywhere measured; every application < 1x",
	})

	// 7. The micro-architecture itself is not the bottleneck: hand-tuned
	//    code reaches the higher A64FX peak (Fig. 1).
	execArm, err := perfmodel.NewExec(e.Arm, toolchain.GNUArmSVE(), "HPL")
	if err != nil {
		return nil, err
	}
	execRef, err := perfmodel.NewExec(e.Ref, toolchain.IntelMN4(), "HPL")
	if err != nil {
		return nil, err
	}
	tuned := float64(execArm.CoreFlops(toolchain.HandTunedAsm))
	tunedRef := float64(execRef.CoreFlops(toolchain.HandTunedAsm))
	out = append(out, Finding{
		Statement: "hand-tuned code reaches the A64FX's higher peak",
		Holds:     tuned > tunedRef,
		Evidence: fmt.Sprintf("hand-tuned per core: %.1f vs %.1f GFlop/s",
			tuned/1e9, tunedRef/1e9),
	})

	return out, nil
}
