// Package core is the evaluation framework tying the reproduction together:
// it owns the two machine models, regenerates every table of the paper
// (hardware configuration, build configurations, and the Table IV speedup
// summary) and exposes figure-level data products for the command-line
// tools and examples.
package core

import (
	"fmt"
	"strings"

	"clustereval/internal/apps/alya"
	"clustereval/internal/apps/gromacs"
	"clustereval/internal/apps/nemo"
	"clustereval/internal/apps/openifs"
	"clustereval/internal/apps/wrf"
	"clustereval/internal/hpcg"
	"clustereval/internal/hpl"
	"clustereval/internal/machine"
	"clustereval/internal/report"
	"clustereval/internal/toolchain"
)

// Evaluation binds the two systems under comparison.
type Evaluation struct {
	Arm machine.Machine // CTE-Arm (A64FX)
	Ref machine.Machine // MareNostrum 4 (Skylake)
}

// New returns the paper's evaluation: CTE-Arm vs MareNostrum 4.
func New() *Evaluation {
	return &Evaluation{Arm: machine.CTEArm(), Ref: machine.MareNostrum4()}
}

// TableI renders the hardware configuration table.
func (e *Evaluation) TableI() *report.Table {
	t := &report.Table{
		Title:   "Table I: hardware configuration",
		Headers: []string{"", e.Arm.Name, e.Ref.Name},
	}
	simd := func(m machine.Machine) string {
		parts := make([]string, len(m.SIMD))
		for i, s := range m.SIMD {
			parts[i] = string(s)
		}
		return strings.Join(parts, ", ")
	}
	rows := []struct {
		label    string
		arm, ref string
	}{
		{"System integrator", e.Arm.Integrator, e.Ref.Integrator},
		{"Core architecture", e.Arm.Arch, e.Ref.Arch},
		{"SIMD extensions", simd(e.Arm), simd(e.Ref)},
		{"CPU name", e.Arm.CPUName, e.Ref.CPUName},
		{"Frequency [GHz]", fmt.Sprintf("%.2f", e.Arm.Node.Core.FrequencyHz/1e9),
			fmt.Sprintf("%.2f", e.Ref.Node.Core.FrequencyHz/1e9)},
		{"Sockets / node", fmt.Sprint(e.Arm.Node.Sockets), fmt.Sprint(e.Ref.Node.Sockets)},
		{"Cores / node", fmt.Sprint(e.Arm.Node.Cores()), fmt.Sprint(e.Ref.Node.Cores())},
		{"DP peak / core [GFlop/s]", fmt.Sprintf("%.2f", e.Arm.Node.Core.DoublePeak().Giga()),
			fmt.Sprintf("%.2f", e.Ref.Node.Core.DoublePeak().Giga())},
		{"DP peak / node [GFlop/s]", fmt.Sprintf("%.2f", e.Arm.Node.DoublePeak().Giga()),
			fmt.Sprintf("%.2f", e.Ref.Node.DoublePeak().Giga())},
		{"Memory / node [GB]", fmt.Sprintf("%.0f", e.Arm.Node.MemoryBytes/1e9),
			fmt.Sprintf("%.0f", e.Ref.Node.MemoryBytes/1e9)},
		{"Memory technology", e.Arm.Node.Domains[0].Technology, e.Ref.Node.Domains[0].Technology},
		{"Peak memory BW [GB/s]", fmt.Sprintf("%.0f", e.Arm.Node.MemoryPeak().GB()),
			fmt.Sprintf("%.0f", e.Ref.Node.MemoryPeak().GB())},
		{"Number of nodes", fmt.Sprint(e.Arm.Nodes), fmt.Sprint(e.Ref.Nodes)},
		{"Interconnect", string(e.Arm.Network.Kind), string(e.Ref.Network.Kind)},
		{"Peak network BW [GB/s]", fmt.Sprintf("%.2f", e.Arm.Network.LinkPeak.GB()),
			fmt.Sprintf("%.2f", e.Ref.Network.LinkPeak.GB())},
	}
	for _, r := range rows {
		t.AddRow(r.label, r.arm, r.ref)
	}
	return t
}

// TableII renders the STREAM build configurations.
func (e *Evaluation) TableII() *report.Table {
	t := &report.Table{
		Title:   "Table II: build configurations for STREAM",
		Headers: []string{"Build", "Compiler", "Flags"},
	}
	add := func(name string, c toolchain.Compiler) {
		t.AddRow(name, c.String(), strings.Join(c.Flags, " "))
	}
	add("CTE-Arm OpenMP", toolchain.StreamOpenMPArm())
	add("CTE-Arm MPI+OpenMP", toolchain.StreamHybridArm())
	add("MareNostrum 4 OpenMP", toolchain.StreamMN4())
	add("MareNostrum 4 MPI+OpenMP", toolchain.StreamMN4())
	return t
}

// TableIII renders the application build configurations.
func (e *Evaluation) TableIII() *report.Table {
	t := &report.Table{
		Title:   "Table III: build configurations for all HPC applications",
		Headers: []string{"Application", "Machine", "Compiler", "MPI", "Dependencies"},
	}
	for _, b := range toolchain.AppBuilds() {
		t.AddRow(b.App, b.Machine, b.Compiler.String(), b.MPIFlavor,
			strings.Join(b.Dependencies, " "))
	}
	return t
}

// Cell is one Table IV entry.
type Cell struct {
	Nodes   int
	Speedup float64
	NP, NA  bool
}

// String renders the cell the way the paper prints it.
func (c Cell) String() string {
	switch {
	case c.NP:
		return "NP"
	case c.NA:
		return "N/A"
	default:
		return fmt.Sprintf("%.2f", c.Speedup)
	}
}

// Row is one Table IV application row.
type Row struct {
	App   string
	Cells []Cell
}

// TableIVNodes are the columns of Table IV.
func TableIVNodes() []int { return []int{1, 16, 32, 64, 128, 192} }

// TableIV computes the speedup summary of the paper's conclusions: the
// performance of CTE-Arm relative to MareNostrum 4 at equal node counts.
func (e *Evaluation) TableIV() ([]Row, error) {
	nodes := TableIVNodes()
	var rows []Row

	// LINPACK: measured at every column.
	linpack := Row{App: "LINPACK"}
	for _, n := range nodes {
		a, err := hpl.Predict(e.Arm, n)
		if err != nil {
			return nil, fmt.Errorf("core: linpack: %w", err)
		}
		m, err := hpl.Predict(e.Ref, n)
		if err != nil {
			return nil, fmt.Errorf("core: linpack: %w", err)
		}
		linpack.Cells = append(linpack.Cells, Cell{Nodes: n, Speedup: float64(a.Perf) / float64(m.Perf)})
	}
	rows = append(rows, linpack)

	// HPCG: the paper measured 1 and 192 nodes only.
	hpcgRow := Row{App: "HPCG"}
	for _, n := range nodes {
		if n != 1 && n != 192 {
			hpcgRow.Cells = append(hpcgRow.Cells, Cell{Nodes: n, NA: true})
			continue
		}
		a, err := hpcg.Predict(e.Arm, hpcg.Optimized, n)
		if err != nil {
			return nil, fmt.Errorf("core: hpcg: %w", err)
		}
		m, err := hpcg.Predict(e.Ref, hpcg.Optimized, n)
		if err != nil {
			return nil, fmt.Errorf("core: hpcg: %w", err)
		}
		hpcgRow.Cells = append(hpcgRow.Cells, Cell{Nodes: n, Speedup: float64(a.Perf) / float64(m.Perf)})
	}
	rows = append(rows, hpcgRow)

	alyaRow, err := e.alyaRow(nodes)
	if err != nil {
		return nil, err
	}
	rows = append(rows, alyaRow)

	oifsRow, err := e.openifsRow(nodes)
	if err != nil {
		return nil, err
	}
	rows = append(rows, oifsRow)

	gmxRow, err := e.gromacsRow(nodes)
	if err != nil {
		return nil, err
	}
	rows = append(rows, gmxRow)

	wrfRow, err := e.wrfRow(nodes)
	if err != nil {
		return nil, err
	}
	rows = append(rows, wrfRow)

	nemoRow, err := e.nemoRow(nodes)
	if err != nil {
		return nil, err
	}
	rows = append(rows, nemoRow)

	return rows, nil
}

func (e *Evaluation) alyaRow(nodes []int) (Row, error) {
	ma, err := alya.NewModel(e.Arm, alya.TestCaseB())
	if err != nil {
		return Row{}, err
	}
	mm, err := alya.NewModel(e.Ref, alya.TestCaseB())
	if err != nil {
		return Row{}, err
	}
	row := Row{App: "Alya"}
	for _, n := range nodes {
		switch {
		case n < ma.MinNodes() || n < mm.MinNodes():
			row.Cells = append(row.Cells, Cell{Nodes: n, NP: true})
		case n > 64: // the paper measured up to 64/78 nodes
			row.Cells = append(row.Cells, Cell{Nodes: n, NA: true})
		default:
			_, _, ta, err := ma.StepTimes(n)
			if err != nil {
				return Row{}, err
			}
			_, _, tm, err := mm.StepTimes(n)
			if err != nil {
				return Row{}, err
			}
			row.Cells = append(row.Cells, Cell{Nodes: n, Speedup: float64(tm) / float64(ta)})
		}
	}
	return row, nil
}

func (e *Evaluation) openifsRow(nodes []int) (Row, error) {
	singleA, err := openifs.NewModel(e.Arm, openifs.TL255L91())
	if err != nil {
		return Row{}, err
	}
	singleM, err := openifs.NewModel(e.Ref, openifs.TL255L91())
	if err != nil {
		return Row{}, err
	}
	multiA, err := openifs.NewModel(e.Arm, openifs.TC0511L91())
	if err != nil {
		return Row{}, err
	}
	multiM, err := openifs.NewModel(e.Ref, openifs.TC0511L91())
	if err != nil {
		return Row{}, err
	}
	row := Row{App: "OpenIFS"}
	cores := e.Arm.Node.Cores()
	for _, n := range nodes {
		switch {
		case n == 1:
			ta, err := singleA.DayTime(1, cores)
			if err != nil {
				return Row{}, err
			}
			tm, err := singleM.DayTime(1, cores)
			if err != nil {
				return Row{}, err
			}
			row.Cells = append(row.Cells, Cell{Nodes: n, Speedup: float64(tm) / float64(ta)})
		case n < multiA.MinNodes():
			row.Cells = append(row.Cells, Cell{Nodes: n, NP: true})
		case n > 128:
			row.Cells = append(row.Cells, Cell{Nodes: n, NA: true})
		default:
			ta, err := multiA.DayTime(n, n*cores)
			if err != nil {
				return Row{}, err
			}
			tm, err := multiM.DayTime(n, n*cores)
			if err != nil {
				return Row{}, err
			}
			row.Cells = append(row.Cells, Cell{Nodes: n, Speedup: float64(tm) / float64(ta)})
		}
	}
	return row, nil
}

func (e *Evaluation) gromacsRow(nodes []int) (Row, error) {
	ma, err := gromacs.NewModel(e.Arm, gromacs.LignocelluloseRF())
	if err != nil {
		return Row{}, err
	}
	mm, err := gromacs.NewModel(e.Ref, gromacs.LignocelluloseRF())
	if err != nil {
		return Row{}, err
	}
	row := Row{App: "Gromacs"}
	for _, n := range nodes {
		l := gromacs.Layout{Nodes: n, Ranks: 8 * n, ThreadsPerRank: 6}
		ta, err := ma.StepTime(l)
		if err != nil {
			return Row{}, err
		}
		tm, err := mm.StepTime(l)
		if err != nil {
			return Row{}, err
		}
		row.Cells = append(row.Cells, Cell{Nodes: n, Speedup: float64(tm) / float64(ta)})
	}
	return row, nil
}

func (e *Evaluation) wrfRow(nodes []int) (Row, error) {
	ma, err := wrf.NewModel(e.Arm, wrf.Iberia4km())
	if err != nil {
		return Row{}, err
	}
	mm, err := wrf.NewModel(e.Ref, wrf.Iberia4km())
	if err != nil {
		return Row{}, err
	}
	row := Row{App: "WRF"}
	for _, n := range nodes {
		if n > 64 { // the paper measured up to 64 nodes
			row.Cells = append(row.Cells, Cell{Nodes: n, NA: true})
			continue
		}
		ta, err := ma.ElapsedTime(n, true)
		if err != nil {
			return Row{}, err
		}
		tm, err := mm.ElapsedTime(n, true)
		if err != nil {
			return Row{}, err
		}
		row.Cells = append(row.Cells, Cell{Nodes: n, Speedup: float64(tm) / float64(ta)})
	}
	return row, nil
}

func (e *Evaluation) nemoRow(nodes []int) (Row, error) {
	ma, err := nemo.NewModel(e.Arm, nemo.BenchORCA1())
	if err != nil {
		return Row{}, err
	}
	mm, err := nemo.NewModel(e.Ref, nemo.BenchORCA1())
	if err != nil {
		return Row{}, err
	}
	row := Row{App: "NEMO"}
	for _, n := range nodes {
		switch {
		case n < ma.MinNodes():
			row.Cells = append(row.Cells, Cell{Nodes: n, NP: true})
		case n != 16: // the paper reports only the 16-node comparison
			row.Cells = append(row.Cells, Cell{Nodes: n, NA: true})
		default:
			ta, err := ma.ExecutionTime(n)
			if err != nil {
				return Row{}, err
			}
			tm, err := mm.ExecutionTime(n)
			if err != nil {
				return Row{}, err
			}
			row.Cells = append(row.Cells, Cell{Nodes: n, Speedup: float64(tm) / float64(ta)})
		}
	}
	return row, nil
}

// RenderTableIV formats the rows as the paper's Table IV.
func RenderTableIV(rows []Row) *report.Table {
	t := &report.Table{
		Title:   "Table IV: speedup of CTE-Arm relative to MareNostrum 4",
		Headers: []string{"Applications", "1", "16", "32", "64", "128", "192"},
	}
	for _, r := range rows {
		cells := []string{r.App}
		for _, c := range r.Cells {
			cells = append(cells, c.String())
		}
		t.AddRow(cells...)
	}
	return t
}
