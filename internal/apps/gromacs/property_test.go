package gromacs

import (
	"math"
	"testing"
	"testing/quick"

	"clustereval/internal/machine"
)

// Property: for any modest system, forces sum to zero (Newton's third law
// survives the cell-list bookkeeping) and a velocity-Verlet step conserves
// momentum exactly.
func TestForcesAndMomentumProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 15}
	f := func(seed uint64, nRaw uint8) bool {
		// Keep the box above twice the cutoff for every generated n.
		n := int(nRaw%150) + 30
		s, err := NewSystem(n, 0.4, 2.0, seed)
		if err != nil {
			return false
		}
		s.ComputeForces()
		var fsum [3]float64
		for _, fv := range s.Force {
			for d := 0; d < 3; d++ {
				fsum[d] += fv[d]
			}
		}
		for d := 0; d < 3; d++ {
			if math.Abs(fsum[d]) > 1e-8 {
				return false
			}
		}
		for i := 0; i < 5; i++ {
			s.Step(0.002)
		}
		p := s.Momentum()
		for d := 0; d < 3; d++ {
			if math.Abs(p[d]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: particles stay inside the periodic box through any short run.
func TestParticlesStayInBoxProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 10}
	f := func(seed uint64, stepsRaw uint8) bool {
		s, err := NewSystem(64, 0.5, 2.0, seed)
		if err != nil {
			return false
		}
		s.ComputeForces()
		steps := int(stepsRaw%30) + 1
		for i := 0; i < steps; i++ {
			s.Step(0.002)
		}
		for _, p := range s.Pos {
			for d := 0; d < 3; d++ {
				if p[d] < 0 || p[d] >= s.Box {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the multi-node model's step time strictly decreases with node
// count at fixed layout density (no anomaly configurations).
func TestModelMonotoneProperty(t *testing.T) {
	mod, err := NewModel(machineCTE(), LignocelluloseRF())
	if err != nil {
		t.Fatal(err)
	}
	f := func(nRaw uint8) bool {
		nodes := int(nRaw%64) + 4 // avoid the 2-node anomaly configuration
		l1 := Layout{Nodes: nodes, Ranks: 8 * nodes, ThreadsPerRank: 6}
		l2 := Layout{Nodes: nodes * 2, Ranks: 16 * nodes, ThreadsPerRank: 6}
		if l2.Nodes > 192 {
			return true
		}
		t1, err := mod.StepTime(l1)
		if err != nil {
			return false
		}
		t2, err := mod.StepTime(l2)
		if err != nil {
			return false
		}
		return t2 < t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func machineCTE() machine.Machine { return machine.CTEArm() }
