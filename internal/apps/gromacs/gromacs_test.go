package gromacs

import (
	"math"
	"testing"

	"clustereval/internal/apps/scaling"
	"clustereval/internal/machine"
)

// --- Real MD proxy ---

func TestEnergyConservation(t *testing.T) {
	s, err := NewSystem(256, 0.5, 2.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	pot := s.ComputeForces()
	e0 := pot + s.KineticEnergy()
	var drift float64
	const steps = 200
	for i := 0; i < steps; i++ {
		pot = s.Step(0.004)
		e := pot + s.KineticEnergy()
		if d := math.Abs(e - e0); d > drift {
			drift = d
		}
	}
	rel := drift / math.Abs(e0)
	if rel > 2e-3 {
		t.Errorf("energy drift %.2e relative over %d steps", rel, steps)
	}
}

func TestMomentumConservation(t *testing.T) {
	s, err := NewSystem(125, 0.4, 2.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	s.ComputeForces()
	for i := 0; i < 100; i++ {
		s.Step(0.004)
	}
	p := s.Momentum()
	for d := 0; d < 3; d++ {
		if math.Abs(p[d]) > 1e-9 {
			t.Errorf("momentum[%d] = %v, want ~0 (Newton's third law)", d, p[d])
		}
	}
}

func TestForcesNewtonThirdLaw(t *testing.T) {
	s, err := NewSystem(64, 0.6, 2.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.ComputeForces()
	var sum [3]float64
	for _, f := range s.Force {
		for d := 0; d < 3; d++ {
			sum[d] += f[d]
		}
	}
	for d := 0; d < 3; d++ {
		if math.Abs(sum[d]) > 1e-9 {
			t.Errorf("net force[%d] = %v", d, sum[d])
		}
	}
}

func TestCellListMatchesBruteForce(t *testing.T) {
	s, err := NewSystem(80, 0.3, 2.0, 11)
	if err != nil {
		t.Fatal(err)
	}
	potCell := s.ComputeForces()
	cellForces := append([][3]float64(nil), s.Force...)

	// Brute-force O(N^2) reference with the same shifted-force LJ.
	ref := make([][3]float64, s.N)
	potRef := 0.0
	rc2 := s.Cutoff * s.Cutoff
	for i := 0; i < s.N; i++ {
		for j := i + 1; j < s.N; j++ {
			dx := s.minimumImage(s.Pos[i][0] - s.Pos[j][0])
			dy := s.minimumImage(s.Pos[i][1] - s.Pos[j][1])
			dz := s.minimumImage(s.Pos[i][2] - s.Pos[j][2])
			r2 := dx*dx + dy*dy + dz*dz
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			r := math.Sqrt(r2)
			ir2 := 1 / r2
			ir6 := ir2 * ir2 * ir2
			fOverR := (48*ir6*ir6-24*ir6)*ir2 - s.fShift/r
			potRef += 4*(ir6*ir6-ir6) + s.fShift*r - s.uShift
			ref[i][0] += fOverR * dx
			ref[i][1] += fOverR * dy
			ref[i][2] += fOverR * dz
			ref[j][0] -= fOverR * dx
			ref[j][1] -= fOverR * dy
			ref[j][2] -= fOverR * dz
		}
	}
	if math.Abs(potCell-potRef) > 1e-9*math.Abs(potRef) {
		t.Errorf("potential: cell %v vs brute %v", potCell, potRef)
	}
	for i := range ref {
		for d := 0; d < 3; d++ {
			if math.Abs(cellForces[i][d]-ref[i][d]) > 1e-9 {
				t.Fatalf("force mismatch particle %d dim %d: %v vs %v",
					i, d, cellForces[i][d], ref[i][d])
			}
		}
	}
}

func TestNewSystemErrors(t *testing.T) {
	if _, err := NewSystem(0, 0.5, 2.5, 1); err == nil {
		t.Error("zero particles accepted")
	}
	if _, err := NewSystem(10, -1, 2.5, 1); err == nil {
		t.Error("negative density accepted")
	}
	if _, err := NewSystem(8, 0.5, 100, 1); err == nil {
		t.Error("cutoff larger than half box accepted")
	}
}

// --- Paper-scale model ---

func TestFig12SingleNodeAnchors(t *testing.T) {
	ma, err := NewModel(machine.CTEArm(), LignocelluloseRF())
	if err != nil {
		t.Fatal(err)
	}
	mm, err := NewModel(machine.MareNostrum4(), LignocelluloseRF())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: with 6 cores CTE-Arm is 3.48x slower; with a whole node 3.10x.
	l6 := Layout{Nodes: 1, Ranks: 1, ThreadsPerRank: 6}
	ta, err := ma.StepTime(l6)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := mm.StepTime(l6)
	if err != nil {
		t.Fatal(err)
	}
	if r := float64(ta) / float64(tm); math.Abs(r-3.48) > 0.15 {
		t.Errorf("6-core slowdown = %.2f, paper 3.48", r)
	}
	l48 := Layout{Nodes: 1, Ranks: 8, ThreadsPerRank: 6}
	ta, _ = ma.StepTime(l48)
	tm, _ = mm.StepTime(l48)
	if r := float64(ta) / float64(tm); math.Abs(r-3.10) > 0.15 {
		t.Errorf("full-node slowdown = %.2f, paper 3.10", r)
	}
}

func TestFig13Anomaly16Ranks(t *testing.T) {
	// "The run with 16 MPI processes performs unexpectedly bad in both
	// machines" — and the 12x8 alternative with the same 96 cores
	// follows the scalability trend.
	for _, m := range []machine.Machine{machine.CTEArm(), machine.MareNostrum4()} {
		mod, err := NewModel(m, LignocelluloseRF())
		if err != nil {
			t.Fatal(err)
		}
		bad, err := mod.StepTime(Layout{Nodes: 2, Ranks: 16, ThreadsPerRank: 6})
		if err != nil {
			t.Fatal(err)
		}
		alt, err := mod.StepTime(AlternativeLayout())
		if err != nil {
			t.Fatal(err)
		}
		if float64(bad) < 1.3*float64(alt) {
			t.Errorf("%s: 16-rank anomaly absent: 16x6=%v vs 12x8=%v", m.Name, bad, alt)
		}
		// The anomalous point even undercuts the 1-node run's throughput
		// proportionally: 2 nodes should be ~2x faster than 1, but are not.
		one, _ := mod.StepTime(Layout{Nodes: 1, Ranks: 8, ThreadsPerRank: 6})
		if float64(one)/float64(bad) > 1.5 {
			t.Errorf("%s: 2-node anomalous run scaled too well", m.Name)
		}
	}
}

func TestTableIVGromacsRow(t *testing.T) {
	ma, _ := NewModel(machine.CTEArm(), LignocelluloseRF())
	mm, _ := NewModel(machine.MareNostrum4(), LignocelluloseRF())
	// Paper row: 0.32, 0.36, 0.38, 0.43, 0.54 at 1..128 nodes. (The
	// 192-node value 0.33 contradicts the text's "1.5x slower at 144
	// nodes" and is treated as an outlier — see EXPERIMENTS.md.)
	for _, c := range []struct {
		nodes int
		want  float64
		tol   float64
	}{
		{1, 0.32, 0.02},
		{16, 0.36, 0.025},
		{32, 0.38, 0.025},
		{64, 0.43, 0.04},
		{128, 0.54, 0.06},
	} {
		l := Layout{Nodes: c.nodes, Ranks: 8 * c.nodes, ThreadsPerRank: 6}
		ta, err := ma.StepTime(l)
		if err != nil {
			t.Fatal(err)
		}
		tm, err := mm.StepTime(l)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(tm) / float64(ta)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("nodes=%d: speedup %.3f, paper %.2f", c.nodes, got, c.want)
		}
	}
}

func TestFig13Slowdown144(t *testing.T) {
	// Paper text: with 144 full nodes, CTE-Arm is 1.5x slower.
	ma, _ := NewModel(machine.CTEArm(), LignocelluloseRF())
	mm, _ := NewModel(machine.MareNostrum4(), LignocelluloseRF())
	l := Layout{Nodes: 144, Ranks: 8 * 144, ThreadsPerRank: 6}
	ta, _ := ma.StepTime(l)
	tm, _ := mm.StepTime(l)
	if r := float64(ta) / float64(tm); r < 1.35 || r > 1.75 {
		t.Errorf("144-node slowdown = %.2f, paper ~1.5", r)
	}
}

func TestFigure12And13Series(t *testing.T) {
	cte, ref, err := Figure12(machine.CTEArm(), machine.MareNostrum4())
	if err != nil {
		t.Fatal(err)
	}
	if len(cte.Points) != 4 || len(ref.Points) != 4 {
		t.Fatalf("Fig12 point counts: %d/%d", len(cte.Points), len(ref.Points))
	}
	// days/ns decreases with cores on both machines.
	for _, s := range []scaling.Series{cte, ref} {
		pts := s.Sorted()
		for i := 1; i < len(pts); i++ {
			if pts[i].Time >= pts[i-1].Time {
				t.Errorf("%s: days/ns not decreasing at %d cores", s.Machine, pts[i].Nodes)
			}
		}
	}

	cte13, ref13, err := Figure13(machine.CTEArm(), machine.MareNostrum4())
	if err != nil {
		t.Fatal(err)
	}
	// The 2-node (16-rank) point breaks monotonicity on both machines.
	for _, s := range []scaling.Series{cte13, ref13} {
		t1, _ := s.TimeAt(1)
		t2, _ := s.TimeAt(2)
		t4, _ := s.TimeAt(4)
		if !(t2 > t4) || float64(t1)/float64(t2) > 1.5 {
			t.Errorf("%s: 16-rank anomaly not visible in Fig13 series", s.Machine)
		}
	}
}

func TestStepTimeValidation(t *testing.T) {
	mod, _ := NewModel(machine.CTEArm(), LignocelluloseRF())
	if _, err := mod.StepTime(Layout{Nodes: 0, Ranks: 1, ThreadsPerRank: 1}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := mod.StepTime(Layout{Nodes: 1, Ranks: 0, ThreadsPerRank: 6}); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := mod.StepTime(Layout{Nodes: 1, Ranks: 9, ThreadsPerRank: 6}); err == nil {
		t.Error("oversubscribed layout accepted")
	}
	if _, err := mod.StepTime(Layout{Nodes: 1000, Ranks: 8, ThreadsPerRank: 6}); err == nil {
		t.Error("oversized node count accepted")
	}
}

func TestDaysPerNS(t *testing.T) {
	mod, _ := NewModel(machine.CTEArm(), LignocelluloseRF())
	// 2 fs steps: 500000 steps per ns. 1 ms per step = 500 s/ns = 5.787e-3 days.
	got := mod.DaysPerNS(1e-3)
	want := 1e-3 * 500000 / 86400
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("DaysPerNS = %v, want %v", got, want)
	}
}

func TestLayoutHelpers(t *testing.T) {
	l := Layout{Nodes: 2, Ranks: 12, ThreadsPerRank: 8}
	if l.Cores() != 96 || l.Label() != "12x8" {
		t.Errorf("layout helpers: %d %s", l.Cores(), l.Label())
	}
	if AlternativeLayout().Cores() != 96 {
		t.Error("alternative layout should use 96 cores")
	}
}
