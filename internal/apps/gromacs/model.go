package gromacs

import (
	"fmt"

	"clustereval/internal/apps/scaling"
	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/memsim"
	"clustereval/internal/perfmodel"
	"clustereval/internal/sched"
	"clustereval/internal/toolchain"
	"clustereval/internal/units"
)

// Config describes a Gromacs input.
type Config struct {
	Name  string
	Atoms float64
	Steps int
	// TimeStepFS is the MD time step in femtoseconds (sets the days/ns
	// conversion of Figs. 12-13).
	TimeStepFS float64

	// Per atom per step, efficiency already folded in:
	// NBFlops: the SIMD nonbonded kernel (reaction field).
	NBFlops float64
	// IrrFlops: bonded terms, constraints, integration, pair-list upkeep.
	IrrFlops float64
	// Bytes of DRAM traffic.
	Bytes float64

	// FixFlops is the per-rank per-step scalar bookkeeping of domain
	// decomposition (pulse setup, comm staging), constant per rank.
	FixFlops float64

	// SVEPortGain is the speedup of Gromacs' hand-written SVE nonbonded
	// kernels over the A64FX scalar core. The 2021-era port was immature:
	// only ~1.25x where AVX-512 kernels fly on Skylake.
	SVEPortGain float64

	// HaloPulses is the number of DD communication pulses per step.
	HaloPulses int
	// SyncRounds is the number of latency-bound synchronization rounds
	// per step (neighbour handshakes, force/virial reductions). These
	// dominate at scale, and TofuD's lower latency is why the paper's
	// Gromacs gap narrows from 0.32 at one node to ~0.5 at 128 nodes.
	SyncRounds int
}

// LignocelluloseRF returns the paper's UEABS Test Case B input: 3.3M atoms,
// reaction-field electrostatics, 10000 steps.
func LignocelluloseRF() Config {
	return Config{
		Name:       "lignocellulose-rf",
		Atoms:      3.27e6,
		Steps:      10000,
		TimeStepFS: 2,

		NBFlops:     900,
		IrrFlops:    385,
		Bytes:       90,
		FixFlops:    160e3,
		SVEPortGain: 1.25,
		HaloPulses:  3,
		SyncRounds:  6,
	}
}

// Layout is one run configuration: ranks x threads on a node count.
type Layout struct {
	Nodes          int
	Ranks          int
	ThreadsPerRank int
}

// Cores returns the total core count.
func (l Layout) Cores() int { return l.Ranks * l.ThreadsPerRank }

// Label renders "RxT".
func (l Layout) Label() string { return fmt.Sprintf("%dx%d", l.Ranks, l.ThreadsPerRank) }

// anomalyRanks is the rank count at which the paper observes an
// unexplained slowdown on both machines ("we currently do not have an
// explanation for this behavior"). We reproduce the observation as-is.
const anomalyRanks = 16

const anomalyFactor = 1.55

// Model predicts Gromacs times on one machine.
type Model struct {
	Machine machine.Machine
	Config  Config
	exec    *perfmodel.Exec
	fabric  *interconnect.Fabric
}

// NewModel builds the model from the Table III build (GNU 11 on CTE-Arm —
// 8.3.1-sve is too old for Gromacs and the Fujitsu compiler fails in
// cmake — Intel 2018.4 on MareNostrum 4).
func NewModel(m machine.Machine, cfg Config) (*Model, error) {
	build, ok := toolchain.AppBuildOn("Gromacs", m)
	if !ok {
		return nil, fmt.Errorf("gromacs: no build configuration for machine %q", m.Name)
	}
	exec, err := perfmodel.NewExec(m, build.Compiler, "Gromacs")
	if err != nil {
		return nil, err
	}
	fab, err := interconnect.New(m, m.Nodes)
	if err != nil {
		return nil, err
	}
	return &Model{Machine: m, Config: cfg, exec: exec, fabric: fab}, nil
}

// nbRate returns the per-core nonbonded kernel rate: the hand-written SIMD
// kernels reach the app-loop rate on Skylake; on the A64FX the immature SVE
// port gains only SVEPortGain over the scalar core.
func (mod *Model) nbRate() float64 {
	r := float64(mod.exec.CoreFlops(toolchain.AppLoop))
	if mod.Machine.Network.Kind == machine.TofuD {
		r *= mod.Config.SVEPortGain
	}
	return r
}

// StepTime models one MD step for the given layout.
func (mod *Model) StepTime(l Layout) (units.Seconds, error) {
	if l.Nodes <= 0 || l.Nodes > mod.Machine.Nodes {
		return 0, fmt.Errorf("gromacs: node count %d out of range", l.Nodes)
	}
	if l.Ranks <= 0 || l.ThreadsPerRank <= 0 {
		return 0, fmt.Errorf("gromacs: invalid layout %+v", l)
	}
	coresPerNode := mod.Machine.Node.Cores()
	if l.Cores() > l.Nodes*coresPerNode {
		return 0, fmt.Errorf("gromacs: layout %s needs %d cores, %d nodes have %d",
			l.Label(), l.Cores(), l.Nodes, l.Nodes*coresPerNode)
	}
	cfg := mod.Config
	cores := float64(l.Cores())

	// Nonbonded + irregular compute, perfectly split over all cores.
	tNB := cfg.Atoms * cfg.NBFlops / (mod.nbRate() * cores)
	irrRate := float64(mod.exec.CoreFlops(toolchain.IrregularCode))
	tIrr := cfg.Atoms * cfg.IrrFlops / (irrRate * cores)

	// Memory traffic at the bandwidth the occupied cores can actually
	// pull (close-packed thread placement).
	bw, err := mod.availableBW(l)
	if err != nil {
		return 0, err
	}
	tMem := cfg.Atoms * cfg.Bytes / (float64(bw) * float64(l.Nodes))

	// Per-rank scalar DD bookkeeping (constant per step).
	tFix := cfg.FixFlops / irrRate

	t := units.Seconds(tNB + tIrr + tMem + tFix)

	// Communication (multi-node only): DD halo pulses plus the amortized
	// global energy reduction.
	if l.Nodes > 1 {
		alloc, err := sched.New(mod.fabric.Topo, sched.TopologyAware, 1).Allocate(l.Nodes)
		if err != nil {
			return 0, err
		}
		comm := perfmodel.NewCommCost(mod.fabric, alloc)
		atomsPerRank := cfg.Atoms / float64(l.Ranks)
		haloBytes := units.Bytes(48 * pow23(atomsPerRank)) // ~48 B per surface atom
		t += units.Seconds(cfg.HaloPulses) * comm.PtToPt(haloBytes)
		t += units.Seconds(cfg.SyncRounds) * comm.Barrier(l.Ranks)
		t += 0.1 * comm.Allreduce(l.Ranks, 64) // every 10 steps
	}

	if l.Ranks == anomalyRanks && l.ThreadsPerRank == 6 {
		t *= anomalyFactor
	}
	return t, nil
}

// availableBW returns the per-node streaming bandwidth the layout's
// threads can extract, with threads packed into domains in order.
func (mod *Model) availableBW(l Layout) (units.BytesPerSecond, error) {
	node := mod.Machine.Node
	coresPerNode := node.Cores()
	threadsOnNode := l.Cores() / l.Nodes
	if threadsOnNode > coresPerNode {
		threadsOnNode = coresPerNode
	}
	perDomain := make([]int, len(node.Domains))
	left := threadsOnNode
	for d := range perDomain {
		take := node.Domains[d].Cores
		if take > left {
			take = left
		}
		perDomain[d] = take
		left -= take
	}
	return memsim.StreamBandwidth(node, perDomain, false, 1.0)
}

// DaysPerNS converts a step time into the figures' y-axis: days of wall
// clock per nanosecond of simulation.
func (mod *Model) DaysPerNS(t units.Seconds) float64 {
	stepsPerNS := 1e6 / mod.Config.TimeStepFS
	return float64(t) * stepsPerNS / 86400
}

func pow23(x float64) float64 {
	if x <= 0 {
		return 0
	}
	c := x
	for i := 0; i < 40; i++ {
		c = (2*c + x/(c*c)) / 3
	}
	return c * c
}

// SingleNodeLayouts is the Fig. 12 sweep: 6 OpenMP threads per rank,
// 1..8 ranks on one node.
func SingleNodeLayouts() []Layout {
	var ls []Layout
	for _, ranks := range []int{1, 2, 4, 8} {
		ls = append(ls, Layout{Nodes: 1, Ranks: ranks, ThreadsPerRank: 6})
	}
	return ls
}

// MultiNodeLayouts is the Fig. 13 sweep: full nodes with 8 ranks x 6
// threads each, over the paper's node range.
func MultiNodeLayouts() []Layout {
	var ls []Layout
	for _, nodes := range []int{1, 2, 4, 8, 16, 32, 64, 128, 144, 192} {
		ls = append(ls, Layout{Nodes: nodes, Ranks: 8 * nodes, ThreadsPerRank: 6})
	}
	return ls
}

// AlternativeLayout is the 12 ranks x 8 threads configuration the paper
// tests to bypass the 16-rank anomaly (same 96 cores on 2 nodes).
func AlternativeLayout() Layout {
	return Layout{Nodes: 2, Ranks: 12, ThreadsPerRank: 8}
}

// LayoutsFor returns the Fig. 13-style full-node layouts for an arbitrary
// machine: the paper's node range with 8x6 ranks/threads on the paper
// machines, a doubling node ladder with 8 ranks per node (threads filling
// the cores) elsewhere.
func LayoutsFor(m machine.Machine) []Layout {
	if m.Name == "CTE-Arm" || m.Name == "MareNostrum 4" {
		return MultiNodeLayouts()
	}
	cores := m.Node.Cores()
	ranksPerNode, threads := 8, cores/8
	if cores%8 != 0 || threads == 0 {
		ranksPerNode, threads = cores, 1
	}
	var ls []Layout
	for _, nodes := range scaling.DoublingSweep(1, m.Nodes) {
		ls = append(ls, Layout{Nodes: nodes, Ranks: ranksPerNode * nodes, ThreadsPerRank: threads})
	}
	return ls
}

// SweepOn returns the multi-node scalability curve (y = days/ns) on an
// arbitrary machine.
func SweepOn(m machine.Machine) ([]scaling.Series, error) {
	mod, err := NewModel(m, LignocelluloseRF())
	if err != nil {
		return nil, err
	}
	s := scaling.Series{Machine: m.Name}
	for _, l := range LayoutsFor(m) {
		t, err := mod.StepTime(l)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, scaling.Point{Nodes: l.Nodes, Time: units.Seconds(mod.DaysPerNS(t))})
	}
	return []scaling.Series{s}, nil
}

// Figure12 returns the single-node curves (y = days/ns, x = cores).
func Figure12(arm, mn4 machine.Machine) (cte, ref scaling.Series, err error) {
	return figure(arm, mn4, SingleNodeLayouts(), func(l Layout) int { return l.Cores() })
}

// Figure13 returns the multi-node curves (y = days/ns, x = nodes).
func Figure13(arm, mn4 machine.Machine) (cte, ref scaling.Series, err error) {
	return figure(arm, mn4, MultiNodeLayouts(), func(l Layout) int { return l.Nodes })
}

func figure(arm, mn4 machine.Machine, layouts []Layout, x func(Layout) int) (scaling.Series, scaling.Series, error) {
	ma, err := NewModel(arm, LignocelluloseRF())
	if err != nil {
		return scaling.Series{}, scaling.Series{}, err
	}
	mm, err := NewModel(mn4, LignocelluloseRF())
	if err != nil {
		return scaling.Series{}, scaling.Series{}, err
	}
	var cte, ref scaling.Series
	cte.Machine = arm.Name
	ref.Machine = mn4.Name
	for _, l := range layouts {
		ta, err := ma.StepTime(l)
		if err != nil {
			return cte, ref, err
		}
		tm, err := mm.StepTime(l)
		if err != nil {
			return cte, ref, err
		}
		cte.Points = append(cte.Points, scaling.Point{Nodes: x(l), Time: units.Seconds(ma.DaysPerNS(ta))})
		ref.Points = append(ref.Points, scaling.Point{Nodes: x(l), Time: units.Seconds(mm.DaysPerNS(tm))})
	}
	return cte, ref, nil
}
