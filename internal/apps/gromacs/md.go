// Package gromacs reproduces the paper's Gromacs experiments (Section V-C).
//
// Gromacs is a molecular-dynamics engine; the paper runs the UEABS
// lignocellulose-rf input (reaction-field electrostatics, 10000 steps) with
// hybrid MPI x OpenMP parallelization, 6 OpenMP threads per rank.
//
// The package provides (i) a real MD mini-engine — Lennard-Jones particles,
// cell-list neighbour search, velocity-Verlet integration with a smoothly
// truncated potential — verified to conserve energy and momentum; and (ii)
// the paper-scale model regenerating Fig. 12 (single node), Fig. 13
// (multi-node, including the unexplained 16-rank anomaly and the 12x8
// alternative) and the Gromacs row of Table IV.
package gromacs

import (
	"fmt"
	"math"

	"clustereval/internal/xrand"
)

// System is a 3D periodic Lennard-Jones particle system in reduced units.
type System struct {
	N      int
	Box    float64 // cubic box side
	Cutoff float64
	Pos    [][3]float64
	Vel    [][3]float64
	Force  [][3]float64

	// Shifted-force constants making U and F continuous at the cutoff
	// (plain truncation would not conserve energy).
	uShift, fShift float64

	cells     [][]int
	nCellSide int
}

// NewSystem places n particles on a perturbed cubic lattice at the given
// number density, with small random velocities (deterministic per seed).
func NewSystem(n int, density, cutoff float64, seed uint64) (*System, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gromacs: particle count %d must be positive", n)
	}
	if density <= 0 || cutoff <= 0 {
		return nil, fmt.Errorf("gromacs: density and cutoff must be positive")
	}
	box := math.Cbrt(float64(n) / density)
	if box < 2*cutoff {
		return nil, fmt.Errorf("gromacs: box %.3g too small for cutoff %.3g", box, cutoff)
	}
	s := &System{
		N: n, Box: box, Cutoff: cutoff,
		Pos:   make([][3]float64, n),
		Vel:   make([][3]float64, n),
		Force: make([][3]float64, n),
	}
	// Shifted-force LJ: F(rc) = 0 and U(rc) = 0.
	rc2 := cutoff * cutoff
	ir6 := 1 / (rc2 * rc2 * rc2)
	s.fShift = (48*ir6*ir6 - 24*ir6) / cutoff
	s.uShift = 4*(ir6*ir6-ir6) + s.fShift*cutoff

	side := int(math.Ceil(math.Cbrt(float64(n))))
	r := xrand.New(seed)
	spacing := box / float64(side)
	i := 0
	for z := 0; z < side && i < n; z++ {
		for y := 0; y < side && i < n; y++ {
			for x := 0; x < side && i < n; x++ {
				s.Pos[i] = [3]float64{
					(float64(x) + 0.5 + 0.1*(r.Float64()-0.5)) * spacing,
					(float64(y) + 0.5 + 0.1*(r.Float64()-0.5)) * spacing,
					(float64(z) + 0.5 + 0.1*(r.Float64()-0.5)) * spacing,
				}
				s.Vel[i] = [3]float64{
					0.1 * r.NormFloat64(), 0.1 * r.NormFloat64(), 0.1 * r.NormFloat64(),
				}
				i++
			}
		}
	}
	s.removeDrift()
	return s, nil
}

// removeDrift zeroes the centre-of-mass velocity.
func (s *System) removeDrift() {
	var cm [3]float64
	for _, v := range s.Vel {
		for d := 0; d < 3; d++ {
			cm[d] += v[d]
		}
	}
	for d := 0; d < 3; d++ {
		cm[d] /= float64(s.N)
	}
	for i := range s.Vel {
		for d := 0; d < 3; d++ {
			s.Vel[i][d] -= cm[d]
		}
	}
}

// buildCells bins particles into the cell list (cell size >= cutoff).
func (s *System) buildCells() {
	s.nCellSide = int(s.Box / s.Cutoff)
	if s.nCellSide < 3 {
		s.nCellSide = 3
	}
	nc := s.nCellSide * s.nCellSide * s.nCellSide
	if s.cells == nil || len(s.cells) != nc {
		s.cells = make([][]int, nc)
	}
	for i := range s.cells {
		s.cells[i] = s.cells[i][:0]
	}
	for i, p := range s.Pos {
		s.cells[s.cellOf(p)] = append(s.cells[s.cellOf(p)], i)
	}
}

func (s *System) cellOf(p [3]float64) int {
	cw := s.Box / float64(s.nCellSide)
	cx := int(p[0]/cw) % s.nCellSide
	cy := int(p[1]/cw) % s.nCellSide
	cz := int(p[2]/cw) % s.nCellSide
	return (cz*s.nCellSide+cy)*s.nCellSide + cx
}

// minimumImage returns the periodic displacement component.
func (s *System) minimumImage(d float64) float64 {
	if d > s.Box/2 {
		return d - s.Box
	}
	if d < -s.Box/2 {
		return d + s.Box
	}
	return d
}

// ComputeForces evaluates shifted-force Lennard-Jones interactions via the
// cell list and returns the potential energy.
func (s *System) ComputeForces() float64 {
	s.buildCells()
	for i := range s.Force {
		s.Force[i] = [3]float64{}
	}
	rc2 := s.Cutoff * s.Cutoff
	pot := 0.0
	n := s.nCellSide
	for cz := 0; cz < n; cz++ {
		for cy := 0; cy < n; cy++ {
			for cx := 0; cx < n; cx++ {
				c := (cz*n+cy)*n + cx
				// Half the neighbour cells (Newton's third law).
				for _, off := range halfNeighbours {
					nx := (cx + off[0] + n) % n
					ny := (cy + off[1] + n) % n
					nz := (cz + off[2] + n) % n
					nb := (nz*n+ny)*n + nx
					if nb == c {
						s.pairsWithin(c, rc2, &pot)
						continue
					}
					s.pairsBetween(c, nb, rc2, &pot)
				}
			}
		}
	}
	return pot
}

// halfNeighbours enumerates the cell itself plus 13 of the 26 neighbours,
// so each cell pair is visited once.
var halfNeighbours = [][3]int{
	{0, 0, 0},
	{1, 0, 0}, {1, 1, 0}, {0, 1, 0}, {-1, 1, 0},
	{1, 0, 1}, {1, 1, 1}, {0, 1, 1}, {-1, 1, 1},
	{1, 0, -1}, {1, 1, -1}, {0, 1, -1}, {-1, 1, -1},
	{0, 0, 1},
}

func (s *System) pairsWithin(c int, rc2 float64, pot *float64) {
	list := s.cells[c]
	for a := 0; a < len(list); a++ {
		for b := a + 1; b < len(list); b++ {
			s.interact(list[a], list[b], rc2, pot)
		}
	}
}

func (s *System) pairsBetween(c, nb int, rc2 float64, pot *float64) {
	for _, i := range s.cells[c] {
		for _, j := range s.cells[nb] {
			s.interact(i, j, rc2, pot)
		}
	}
}

func (s *System) interact(i, j int, rc2 float64, pot *float64) {
	dx := s.minimumImage(s.Pos[i][0] - s.Pos[j][0])
	dy := s.minimumImage(s.Pos[i][1] - s.Pos[j][1])
	dz := s.minimumImage(s.Pos[i][2] - s.Pos[j][2])
	r2 := dx*dx + dy*dy + dz*dz
	if r2 >= rc2 || r2 == 0 {
		return
	}
	r := math.Sqrt(r2)
	ir2 := 1 / r2
	ir6 := ir2 * ir2 * ir2
	// Shifted-force LJ: F/r and U with continuity at the cutoff.
	fOverR := (48*ir6*ir6-24*ir6)*ir2 - s.fShift/r
	u := 4*(ir6*ir6-ir6) + s.fShift*r - s.uShift
	*pot += u
	fx, fy, fz := fOverR*dx, fOverR*dy, fOverR*dz
	s.Force[i][0] += fx
	s.Force[i][1] += fy
	s.Force[i][2] += fz
	s.Force[j][0] -= fx
	s.Force[j][1] -= fy
	s.Force[j][2] -= fz
}

// KineticEnergy returns the total kinetic energy (unit mass).
func (s *System) KineticEnergy() float64 {
	ke := 0.0
	for _, v := range s.Vel {
		ke += 0.5 * (v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
	}
	return ke
}

// Momentum returns the total momentum vector.
func (s *System) Momentum() [3]float64 {
	var p [3]float64
	for _, v := range s.Vel {
		for d := 0; d < 3; d++ {
			p[d] += v[d]
		}
	}
	return p
}

// Step advances the system one velocity-Verlet step of size dt and returns
// the potential energy at the new positions.
func (s *System) Step(dt float64) float64 {
	for i := range s.Pos {
		for d := 0; d < 3; d++ {
			s.Vel[i][d] += 0.5 * dt * s.Force[i][d]
			s.Pos[i][d] += dt * s.Vel[i][d]
			// Wrap into the box.
			s.Pos[i][d] = math.Mod(s.Pos[i][d]+s.Box, s.Box)
		}
	}
	pot := s.ComputeForces()
	for i := range s.Vel {
		for d := 0; d < 3; d++ {
			s.Vel[i][d] += 0.5 * dt * s.Force[i][d]
		}
	}
	return pot
}
