// Package nemo reproduces the paper's NEMO experiments (Section V-B).
//
// NEMO is an ocean model on a curvilinear Arakawa C grid, parallelized by
// MPI domain decomposition; the paper runs the BENCH configuration at
// ORCA1 (1-degree) resolution.
//
// The package provides (i) a real mini-ocean: a conservative 2D tracer
// advection-diffusion stepper, domain-decomposed over the simulated MPI
// runtime with genuine halo exchanges, verified bit-compatible with the
// serial stepper and mass-conserving; and (ii) the paper-scale BENCH model
// regenerating Fig. 11 and the NEMO row of Table IV.
package nemo

import (
	"context"
	"fmt"
	"math"

	"clustereval/internal/mpisim"
	"clustereval/internal/units"
)

// Field is a 2D periodic tracer field, row-major, ny rows by nx columns.
type Field struct {
	NX, NY int
	Data   []float64
}

// NewField allocates an nx x ny field.
func NewField(nx, ny int) (*Field, error) {
	if nx < 3 || ny < 3 {
		return nil, fmt.Errorf("nemo: grid %dx%d too small (need >= 3)", nx, ny)
	}
	return &Field{NX: nx, NY: ny, Data: make([]float64, nx*ny)}, nil
}

// At returns the value at column i, row j (periodic wrap).
func (f *Field) At(i, j int) float64 {
	i = ((i % f.NX) + f.NX) % f.NX
	j = ((j % f.NY) + f.NY) % f.NY
	return f.Data[j*f.NX+i]
}

// Set assigns the value at column i, row j (no wrap; caller in range).
func (f *Field) Set(i, j int, v float64) { f.Data[j*f.NX+i] = v }

// Mass returns the total tracer content — conserved by the scheme.
func (f *Field) Mass() float64 {
	s := 0.0
	for _, v := range f.Data {
		s += v
	}
	return s
}

// Params configures the stepper: constant advection velocity (u, v) in
// cells/step and diffusion coefficient kappa (stability: kappa <= 0.25,
// |u|,|v| <= 1).
type Params struct {
	U, V  float64
	Kappa float64
}

// Validate checks the CFL-style stability limits.
func (p Params) Validate() error {
	if math.Abs(p.U) > 1 || math.Abs(p.V) > 1 {
		return fmt.Errorf("nemo: advection speed (%v,%v) exceeds CFL limit 1", p.U, p.V)
	}
	if p.Kappa < 0 || p.Kappa > 0.25 {
		return fmt.Errorf("nemo: diffusion %v outside [0, 0.25]", p.Kappa)
	}
	return nil
}

// Step advances the field one time step serially: first-order upwind
// advection plus centered diffusion, a conservative flux form.
func Step(f *Field, p Params) (*Field, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out, err := NewField(f.NX, f.NY)
	if err != nil {
		return nil, err
	}
	for j := 0; j < f.NY; j++ {
		for i := 0; i < f.NX; i++ {
			out.Set(i, j, updated(f, p, i, j))
		}
	}
	return out, nil
}

// updated computes the new value at (i, j) from the 5-point neighbourhood.
// Flux-form upwind: each face's flux leaves one cell and enters the next,
// so total mass is conserved exactly (up to FP rounding).
func updated(f *Field, p Params, i, j int) float64 {
	c := f.At(i, j)
	w, e := f.At(i-1, j), f.At(i+1, j)
	s, n := f.At(i, j-1), f.At(i, j+1)

	// Upwind advective fluxes through the four faces.
	var fluxInX, fluxOutX float64
	if p.U >= 0 {
		fluxInX, fluxOutX = p.U*w, p.U*c
	} else {
		fluxInX, fluxOutX = -p.U*e, -p.U*c
	}
	var fluxInY, fluxOutY float64
	if p.V >= 0 {
		fluxInY, fluxOutY = p.V*s, p.V*c
	} else {
		fluxInY, fluxOutY = -p.V*n, -p.V*c
	}
	adv := fluxInX - fluxOutX + fluxInY - fluxOutY
	diff := p.Kappa * (w + e + s + n - 4*c)
	return c + adv + diff
}

// RunSerial advances steps time steps serially.
func RunSerial(f *Field, p Params, steps int) (*Field, error) {
	return RunSerialContext(context.Background(), f, p, steps)
}

// RunSerialContext is RunSerial under a context, checked between steps
// so a job deadline can abort a long integration.
func RunSerialContext(ctx context.Context, f *Field, p Params, steps int) (*Field, error) {
	cur := f
	for s := 0; s < steps; s++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		next, err := Step(cur, p)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// RunDistributed advances the field with a row-block domain decomposition
// over the simulated MPI world: each rank owns a contiguous band of rows
// and exchanges one-row halos with its periodic neighbours every step.
// The result is identical to the serial stepper.
func RunDistributed(w *mpisim.World, f *Field, p Params, steps int) (*Field, error) {
	return RunDistributedContext(context.Background(), w, f, p, steps)
}

// RunDistributedContext is RunDistributed under a context: cancellation
// aborts the simulated MPI world between DES events.
func RunDistributedContext(ctx context.Context, w *mpisim.World, f *Field, p Params, steps int) (*Field, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ranks := w.Size()
	if f.NY < ranks {
		return nil, fmt.Errorf("nemo: %d rows cannot split over %d ranks", f.NY, ranks)
	}
	rowsOf := func(r int) (lo, hi int) {
		base, extra := f.NY/ranks, f.NY%ranks
		lo = r*base + min(r, extra)
		hi = lo + base
		if r < extra {
			hi++
		}
		return lo, hi
	}

	results := make([][]float64, ranks)
	err := w.RunContext(ctx, func(c *mpisim.Comm) {
		r := c.Rank()
		lo, hi := rowsOf(r)
		rows := hi - lo
		// Local band with one halo row above and below.
		local := make([]float64, (rows+2)*f.NX)
		for j := 0; j < rows; j++ {
			copy(local[(j+1)*f.NX:(j+2)*f.NX], f.Data[(lo+j)*f.NX:(lo+j+1)*f.NX])
		}
		up := (r - 1 + ranks) % ranks
		down := (r + 1) % ranks
		rowBytes := units.Bytes(8 * f.NX)

		for s := 0; s < steps; s++ {
			// Halo exchange: send first owned row up, last owned row down.
			firstRow := append([]float64(nil), local[f.NX:2*f.NX]...)
			lastRow := append([]float64(nil), local[rows*f.NX:(rows+1)*f.NX]...)
			reqU := c.Isend(up, 1, rowBytes, firstRow)
			reqD := c.Isend(down, 2, rowBytes, lastRow)
			fromDown := c.Recv(down, 1).Payload.([]float64)
			fromUp := c.Recv(up, 2).Payload.([]float64)
			copy(local[(rows+1)*f.NX:], fromDown)
			copy(local[:f.NX], fromUp)
			c.Wait(reqU)
			c.Wait(reqD)

			// Step the owned band using a periodic-in-x view.
			band := &Field{NX: f.NX, NY: rows + 2, Data: local}
			next := make([]float64, len(local))
			for j := 1; j <= rows; j++ {
				for i := 0; i < f.NX; i++ {
					next[j*f.NX+i] = updatedNoWrapY(band, p, i, j)
				}
			}
			copy(local, next)
		}
		out := make([]float64, rows*f.NX)
		copy(out, local[f.NX:(rows+1)*f.NX])
		results[r] = out
	})
	if err != nil {
		return nil, err
	}
	final, _ := NewField(f.NX, f.NY)
	for r := 0; r < ranks; r++ {
		lo, _ := rowsOf(r)
		copy(final.Data[lo*f.NX:lo*f.NX+len(results[r])], results[r])
	}
	return final, nil
}

// updatedNoWrapY is the stencil update where y-neighbours are taken
// directly (halo rows already in place) and x wraps periodically.
func updatedNoWrapY(f *Field, p Params, i, j int) float64 {
	wrapX := func(i int) int { return ((i % f.NX) + f.NX) % f.NX }
	at := func(i, j int) float64 { return f.Data[j*f.NX+wrapX(i)] }
	c := at(i, j)
	w, e := at(i-1, j), at(i+1, j)
	s, n := at(i, j-1), at(i, j+1)
	var fluxInX, fluxOutX float64
	if p.U >= 0 {
		fluxInX, fluxOutX = p.U*w, p.U*c
	} else {
		fluxInX, fluxOutX = -p.U*e, -p.U*c
	}
	var fluxInY, fluxOutY float64
	if p.V >= 0 {
		fluxInY, fluxOutY = p.V*s, p.V*c
	} else {
		fluxInY, fluxOutY = -p.V*n, -p.V*c
	}
	adv := fluxInX - fluxOutX + fluxInY - fluxOutY
	diff := p.Kappa * (w + e + s + n - 4*c)
	return c + adv + diff
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
