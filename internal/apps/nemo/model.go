package nemo

import (
	"fmt"
	"math"

	"clustereval/internal/apps/scaling"
	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/perfmodel"
	"clustereval/internal/sched"
	"clustereval/internal/toolchain"
	"clustereval/internal/units"
)

// Config describes a NEMO BENCH configuration.
type Config struct {
	Name string
	// Horizontal grid columns and vertical levels (ORCA1: ~362x332 x 75).
	Columns float64
	Levels  float64
	Steps   int
	Runs    int // the paper averages three runs

	// Per 3D grid point per step: the branchy vertical physics / equation
	// of state (irregular, never vectorized anywhere) and the streaming
	// stencil traffic.
	IrrFlopsPerPoint float64
	IrrEfficiency    float64
	BytesPerPoint    float64

	// MemBytesPerPoint sets the memory floor (8 CTE-Arm nodes).
	MemBytesPerPoint float64
	// SerialPerStep is the per-step non-parallel work (diagnostics
	// gathering on rank 0) that bends the strong-scaling curve.
	SerialPerStep units.Seconds
	// HaloFields is the number of 2D/3D fields exchanged per step.
	HaloFields float64
}

// BenchORCA1 returns the paper's BENCH configuration at 1-degree
// resolution, calibrated to the paper's anchors: MareNostrum 4 runs
// 1.70-1.79x faster node-for-node, the input needs 8 CTE-Arm nodes, and
// CTE-Arm's scaling flattens around 128 nodes.
func BenchORCA1() Config {
	return Config{
		Name:    "BENCH-1 (ORCA1)",
		Columns: 362 * 332,
		Levels:  75,
		Steps:   1000,
		Runs:    3,

		IrrFlopsPerPoint: 5000,
		IrrEfficiency:    0.25,
		BytesPerPoint:    9400,

		MemBytesPerPoint: 8900, // ~80 GB total working set
		SerialPerStep:    units.Seconds(6e-3),
		HaloFields:       3,
	}
}

// Model predicts NEMO times on one machine.
type Model struct {
	Machine machine.Machine
	Config  Config
	exec    *perfmodel.Exec
	fabric  *interconnect.Fabric
}

// NewModel builds the model from the Table III build for the machine (GNU
// on CTE-Arm — the Fujitsu compiler fails on NEMO's Fortran — and Intel on
// MareNostrum 4).
func NewModel(m machine.Machine, cfg Config) (*Model, error) {
	build, ok := toolchain.AppBuildOn("NEMO", m)
	if !ok {
		return nil, fmt.Errorf("nemo: no build configuration for machine %q", m.Name)
	}
	exec, err := perfmodel.NewExec(m, build.Compiler, "NEMO")
	if err != nil {
		return nil, err
	}
	fab, err := interconnect.New(m, m.Nodes)
	if err != nil {
		return nil, err
	}
	return &Model{Machine: m, Config: cfg, exec: exec, fabric: fab}, nil
}

// Points returns the 3D grid size.
func (mod *Model) Points() float64 { return mod.Config.Columns * mod.Config.Levels }

// MinNodes returns the memory floor.
func (mod *Model) MinNodes() int {
	need := mod.Points() * mod.Config.MemBytesPerPoint
	perNode := mod.Machine.UsableMemory(mod.Machine.Node.Cores())
	if perNode <= 0 {
		return mod.Machine.Nodes + 1
	}
	n := 1
	for float64(n)*perNode < need {
		n++
	}
	return n
}

// ExecutionTime models the full BENCH run on `nodes` nodes (MPI-only).
func (mod *Model) ExecutionTime(nodes int) (units.Seconds, error) {
	if nodes < mod.MinNodes() {
		return 0, fmt.Errorf("nemo: %s needs >= %d nodes (memory floor)", mod.Machine.Name, mod.MinNodes())
	}
	if nodes > mod.Machine.Nodes {
		return 0, fmt.Errorf("nemo: %d nodes exceed the cluster", nodes)
	}
	cfg := mod.Config
	cores := mod.Machine.Node.Cores()
	ranks := nodes * cores

	// The 2D decomposition gives each rank a near-square patch of
	// columns; halo columns are computed redundantly, so the effective
	// work per rank grows as the patch shrinks — the strong-scaling
	// limit the paper hits around 128 CTE-Arm nodes.
	colsPerRank := cfg.Columns / float64(ranks)
	side := math.Sqrt(colsPerRank)
	haloFactor := (side + 2) * (side + 2) / colsPerRank

	pointsPerNode := mod.Points() / float64(nodes) * haloFactor
	irr := perfmodel.Work{
		Flops: pointsPerNode * cfg.IrrFlopsPerPoint / cfg.IrrEfficiency,
		Kind:  toolchain.IrregularCode,
	}
	mem := perfmodel.Work{
		Bytes: pointsPerNode * cfg.BytesPerPoint,
		Kind:  toolchain.RegularLoop,
	}
	perStep := mod.exec.Time(irr, cores) + mod.exec.Time(mem, cores)

	// Communication: the 4-neighbour halo plus a few global reductions
	// per step (time filters, solver norms).
	alloc, err := sched.New(mod.fabric.Topo, sched.TopologyAware, 1).Allocate(nodes)
	if err != nil {
		return 0, err
	}
	comm := perfmodel.NewCommCost(mod.fabric, alloc)
	haloBytes := units.Bytes(side * cfg.Levels * 8 * cfg.HaloFields)
	perStep += comm.HaloExchange(4, haloBytes) + 3*comm.Allreduce(ranks, 8)
	perStep += cfg.SerialPerStep

	return perStep * units.Seconds(float64(cfg.Steps)), nil
}

// CTESweep is the paper's CTE-Arm node range (8 to 192).
func CTESweep() []int { return []int{8, 12, 16, 24, 32, 48, 64, 96, 128, 160, 192} }

// MN4Sweep is the paper's MareNostrum 4 node range (1 to 24), extended
// with 27 (the equivalence point the paper quotes).
func MN4Sweep() []int { return []int{1, 2, 4, 8, 12, 16, 24, 27} }

// SweepOn returns the BENCH scalability curve on an arbitrary machine:
// the paper's node range on the paper machines, a doubling ladder from
// the memory floor elsewhere.
func SweepOn(m machine.Machine) ([]scaling.Series, error) {
	mod, err := NewModel(m, BenchORCA1())
	if err != nil {
		return nil, err
	}
	var counts []int
	switch m.Name {
	case "CTE-Arm":
		counts = CTESweep()
	case "MareNostrum 4":
		counts = MN4Sweep()
	default:
		counts = scaling.DoublingSweep(mod.MinNodes(), m.Nodes)
	}
	s := scaling.Series{Machine: m.Name}
	for _, n := range counts {
		t, err := mod.ExecutionTime(n)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, scaling.Point{Nodes: n, Time: t})
	}
	return []scaling.Series{s}, nil
}

// Figure11 returns the scalability curves of Fig. 11.
func Figure11(arm, mn4 machine.Machine) (cte, ref scaling.Series, err error) {
	ma, err := NewModel(arm, BenchORCA1())
	if err != nil {
		return
	}
	mm, err := NewModel(mn4, BenchORCA1())
	if err != nil {
		return
	}
	cte = scaling.Series{Machine: arm.Name}
	for _, n := range CTESweep() {
		t, err2 := ma.ExecutionTime(n)
		if err2 != nil {
			return cte, ref, err2
		}
		cte.Points = append(cte.Points, scaling.Point{Nodes: n, Time: t})
	}
	ref = scaling.Series{Machine: mn4.Name}
	for _, n := range MN4Sweep() {
		t, err2 := mm.ExecutionTime(n)
		if err2 != nil {
			return cte, ref, err2
		}
		ref.Points = append(ref.Points, scaling.Point{Nodes: n, Time: t})
	}
	return cte, ref, nil
}
