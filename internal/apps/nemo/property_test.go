package nemo

import (
	"math"
	"testing"
	"testing/quick"

	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/mpisim"
	"clustereval/internal/xrand"
)

// Property: the flux-form scheme conserves tracer mass exactly (to FP
// rounding) for random fields and any parameters inside the combined CFL
// stability region |u| + |v| + 4*kappa <= 1. (Outside it the scheme blows
// up; mass is still conserved in exact arithmetic, but the huge
// intermediate values destroy the floating-point comparison.)
func TestMassConservationProperty(t *testing.T) {
	f := func(seed uint64, uRaw, vRaw, kRaw uint8, stepsRaw uint8) bool {
		fld, err := NewField(16, 12)
		if err != nil {
			return false
		}
		r := xrand.New(seed)
		for i := range fld.Data {
			fld.Data[i] = r.Float64()
		}
		p := Params{
			U:     float64(uRaw%81)/100 - 0.40, // [-0.40, 0.40]
			V:     float64(vRaw%81)/100 - 0.40,
			Kappa: float64(kRaw%6) / 100, // [0, 0.05]
		}
		steps := int(stepsRaw%20) + 1
		m0 := fld.Mass()
		out, err := RunSerial(fld, p, steps)
		if err != nil {
			return false
		}
		return math.Abs(out.Mass()-m0) <= 1e-9*math.Abs(m0)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: pure diffusion never produces new extrema (max principle).
func TestMaxPrincipleProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		fld, err := NewField(12, 12)
		if err != nil {
			return false
		}
		r := xrand.New(seed)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range fld.Data {
			fld.Data[i] = r.Float64() * 10
			if fld.Data[i] < lo {
				lo = fld.Data[i]
			}
			if fld.Data[i] > hi {
				hi = fld.Data[i]
			}
		}
		p := Params{Kappa: float64(kRaw%26) / 100}
		out, err := RunSerial(fld, p, 10)
		if err != nil {
			return false
		}
		for _, v := range out.Data {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the distributed stepper equals the serial stepper for any rank
// count that divides the rows (and any that does not).
func TestDistributedEquivalenceProperty(t *testing.T) {
	fab := tofuFabric(t)
	f := func(seed uint64, ranksRaw uint8) bool {
		ranks := int(ranksRaw%6) + 1
		w, err := worldOn(fab, ranks)
		if err != nil {
			return false
		}
		fld, _ := NewField(12, 13)
		r := xrand.New(seed)
		for i := range fld.Data {
			fld.Data[i] = r.Float64()
		}
		p := Params{U: 0.5, V: -0.25, Kappa: 0.1}
		serial, err := RunSerial(fld, p, 6)
		if err != nil {
			return false
		}
		dist, err := RunDistributed(w, fld, p, 6)
		if err != nil {
			return false
		}
		for i := range serial.Data {
			if serial.Data[i] != dist.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// tofuFabric and worldOn are small helpers for the distributed property.
func tofuFabric(t *testing.T) *interconnect.Fabric {
	t.Helper()
	f, err := interconnect.NewTofuD(machine.CTEArm(), 12)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func worldOn(f *interconnect.Fabric, ranks int) (*mpisim.World, error) {
	return mpisim.NewWorld(f, ranks, 4)
}
