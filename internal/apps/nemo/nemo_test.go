package nemo

import (
	"math"
	"testing"

	"clustereval/internal/apps/scaling"
	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/mpisim"
)

// --- Real ocean proxy ---

func gauss(f *Field) {
	for j := 0; j < f.NY; j++ {
		for i := 0; i < f.NX; i++ {
			dx := float64(i-f.NX/2) / float64(f.NX)
			dy := float64(j-f.NY/2) / float64(f.NY)
			f.Set(i, j, math.Exp(-40*(dx*dx+dy*dy)))
		}
	}
}

func TestMassConservation(t *testing.T) {
	f, err := NewField(32, 24)
	if err != nil {
		t.Fatal(err)
	}
	gauss(f)
	m0 := f.Mass()
	out, err := RunSerial(f, Params{U: 0.4, V: -0.3, Kappa: 0.1}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Mass()-m0) > 1e-9*math.Abs(m0) {
		t.Errorf("mass not conserved: %v -> %v", m0, out.Mass())
	}
}

func TestDiffusionSmooths(t *testing.T) {
	f, _ := NewField(16, 16)
	f.Set(8, 8, 100)
	out, err := RunSerial(f, Params{Kappa: 0.2}, 30)
	if err != nil {
		t.Fatal(err)
	}
	max := 0.0
	for _, v := range out.Data {
		if v < -1e-12 {
			t.Fatalf("diffusion produced negative tracer %v", v)
		}
		if v > max {
			max = v
		}
	}
	if max > 10 {
		t.Errorf("peak %v did not smooth out", max)
	}
}

func TestAdvectionMovesPeak(t *testing.T) {
	f, _ := NewField(32, 8)
	f.Set(4, 4, 1)
	// Pure advection at u=1 moves the peak exactly one cell per step.
	out, err := RunSerial(f, Params{U: 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(14, 4) != 1 {
		t.Errorf("peak not at (14,4): %v", out.At(14, 4))
	}
	if out.At(4, 4) != 0 {
		t.Errorf("origin not emptied: %v", out.At(4, 4))
	}
}

func TestPeriodicWrap(t *testing.T) {
	f, _ := NewField(8, 8)
	f.Set(7, 3, 1)
	out, err := RunSerial(f, Params{U: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(1, 3) != 1 {
		t.Error("advection did not wrap periodically")
	}
}

func TestParamValidation(t *testing.T) {
	for _, p := range []Params{{U: 1.5}, {V: -2}, {Kappa: 0.3}, {Kappa: -0.1}} {
		if p.Validate() == nil {
			t.Errorf("unstable params accepted: %+v", p)
		}
	}
	if _, err := NewField(2, 8); err == nil {
		t.Error("tiny grid accepted")
	}
}

func TestDistributedMatchesSerial(t *testing.T) {
	fab, err := interconnect.NewTofuD(machine.CTEArm(), 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 2, 5, 8} {
		w, err := mpisim.NewWorld(fab, ranks, 4)
		if err != nil {
			t.Fatal(err)
		}
		f, _ := NewField(24, 17)
		gauss(f)
		p := Params{U: 0.5, V: 0.25, Kappa: 0.12}
		const steps = 12
		serial, err := RunSerial(f, p, steps)
		if err != nil {
			t.Fatal(err)
		}
		dist, err := RunDistributed(w, f, p, steps)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		for i := range serial.Data {
			if serial.Data[i] != dist.Data[i] {
				t.Fatalf("ranks=%d: mismatch at %d: %v vs %v",
					ranks, i, serial.Data[i], dist.Data[i])
			}
		}
	}
}

func TestDistributedErrors(t *testing.T) {
	fab, _ := interconnect.NewTofuD(machine.CTEArm(), 12)
	w, _ := mpisim.NewWorld(fab, 10, 4)
	f, _ := NewField(8, 4) // 4 rows cannot split over 10 ranks
	if _, err := RunDistributed(w, f, Params{Kappa: 0.1}, 2); err == nil {
		t.Error("over-decomposition accepted")
	}
	if _, err := RunDistributed(w, f, Params{Kappa: 0.9}, 2); err == nil {
		t.Error("unstable params accepted")
	}
}

// --- Paper-scale model ---

func TestMemoryFloor8Nodes(t *testing.T) {
	ma, err := NewModel(machine.CTEArm(), BenchORCA1())
	if err != nil {
		t.Fatal(err)
	}
	if got := ma.MinNodes(); got != 8 {
		t.Errorf("CTE-Arm floor = %d nodes, paper: 8", got)
	}
	mm, err := NewModel(machine.MareNostrum4(), BenchORCA1())
	if err != nil {
		t.Fatal(err)
	}
	if got := mm.MinNodes(); got != 1 {
		t.Errorf("MN4 floor = %d nodes, paper runs from 1", got)
	}
	if _, err := ma.ExecutionTime(4); err == nil {
		t.Error("below-floor run accepted")
	}
	if _, err := ma.ExecutionTime(500); err == nil {
		t.Error("oversized run accepted")
	}
}

func TestFig11SlowdownBand(t *testing.T) {
	// Paper: MN4 performance is between 1.70x and 1.79x higher.
	cte, ref, err := Figure11(machine.CTEArm(), machine.MareNostrum4())
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{8, 12, 16, 24} {
		s, err := scaling.Slowdown(cte, ref, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if s < 1.60 || s > 1.90 {
			t.Errorf("nodes=%d: slowdown %.2f, paper band [1.70, 1.79]", nodes, s)
		}
	}
}

func TestFig11Equivalence48to27(t *testing.T) {
	// Paper: 48 A64FX nodes match 27 MareNostrum 4 nodes.
	cte, ref, err := Figure11(machine.CTEArm(), machine.MareNostrum4())
	if err != nil {
		t.Fatal(err)
	}
	t48, ok := cte.TimeAt(48)
	if !ok {
		t.Fatal("no 48-node point")
	}
	t27, ok := ref.TimeAt(27)
	if !ok {
		t.Fatal("no 27-node point")
	}
	ratio := float64(t48) / float64(t27)
	if ratio < 0.85 || ratio > 1.18 {
		t.Errorf("48 CTE vs 27 MN4 time ratio = %.2f, paper ~1.0", ratio)
	}
}

func TestFig11FlatteningAt128(t *testing.T) {
	// Paper: CTE-Arm scalability flattens around 128 nodes.
	cte, _, err := Figure11(machine.CTEArm(), machine.MareNostrum4())
	if err != nil {
		t.Fatal(err)
	}
	t64, _ := cte.TimeAt(64)
	t128, _ := cte.TimeAt(128)
	t192, _ := cte.TimeAt(192)
	// 64 -> 128 doubles resources: decent gain expected.
	gainEarly := float64(t64) / float64(t128)
	// 128 -> 192 is a 1.5x resource increase: gain must be clearly
	// sub-proportional (flattening).
	gainLate := float64(t128) / float64(t192)
	if gainEarly < 1.3 {
		t.Errorf("64->128 gain %.2f too weak", gainEarly)
	}
	if gainLate > 1.25 {
		t.Errorf("128->192 gain %.2f — curve should flatten near 128", gainLate)
	}
}

func TestTableIVNemoRow(t *testing.T) {
	// Table IV NEMO at 16 nodes: 0.56.
	cte, ref, err := Figure11(machine.CTEArm(), machine.MareNostrum4())
	if err != nil {
		t.Fatal(err)
	}
	tA, _ := cte.TimeAt(16)
	tM, _ := ref.TimeAt(16)
	got := float64(tM) / float64(tA)
	if math.Abs(got-0.56) > 0.05 {
		t.Errorf("speedup at 16 nodes = %.3f, paper 0.56", got)
	}
}

func TestModelRejectsUnknownMachine(t *testing.T) {
	m := machine.CTEArm()
	m.Name = "nope"
	m.CPUName = "POWER9"
	m.Arch = "POWER"
	if _, err := NewModel(m, BenchORCA1()); err == nil {
		t.Error("machine with unknown silicon accepted")
	}
}
