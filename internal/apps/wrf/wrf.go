// Package wrf reproduces the paper's WRF experiments (Section V-E).
//
// WRF is a mesoscale numerical-weather-prediction model; the paper runs an
// Iberian-peninsula domain at 4 km resolution for 56 simulated hours,
// writing one history frame per simulated hour (54 frames), with IO
// enabled and disabled.
//
// The package provides (i) a real dynamics+IO mini-proxy: a Lax-Wendroff
// finite-difference advection solver (second-order, verified against the
// analytic solution) that periodically serializes binary history frames,
// with a reader that round-trips them; and (ii) the paper-scale model
// regenerating Fig. 16 and the WRF row of Table IV.
package wrf

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Domain is a 1D periodic advection problem u_t + a u_x = 0 solved with
// the Lax-Wendroff scheme — the same dissipation/dispersion trade-offs
// WRF's advection schemes exhibit, in miniature.
type Domain struct {
	N   int
	L   float64
	A   float64 // advection speed
	CFL float64 // a*dt/dx, must be <= 1
	U   []float64
	// StepCount tracks advanced steps for frame metadata.
	StepCount int
}

// NewDomain builds the domain with the given initial condition sampler.
func NewDomain(n int, l, a, cfl float64, init func(x float64) float64) (*Domain, error) {
	if n < 4 {
		return nil, fmt.Errorf("wrf: grid %d too small", n)
	}
	if l <= 0 {
		return nil, fmt.Errorf("wrf: domain length must be positive")
	}
	if cfl <= 0 || cfl > 1 {
		return nil, fmt.Errorf("wrf: CFL %v outside (0, 1]", cfl)
	}
	d := &Domain{N: n, L: l, A: a, CFL: cfl, U: make([]float64, n)}
	for i := range d.U {
		d.U[i] = init(l * float64(i) / float64(n))
	}
	return d, nil
}

// Dt returns the time step implied by the CFL number.
func (d *Domain) Dt() float64 {
	dx := d.L / float64(d.N)
	return d.CFL * dx / math.Abs(d.A)
}

// Step advances one Lax-Wendroff step:
// u_i' = u_i - c/2 (u_{i+1}-u_{i-1}) + c^2/2 (u_{i+1}-2u_i+u_{i-1}).
func (d *Domain) Step() {
	c := d.CFL * sign(d.A)
	n := d.N
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		um := d.U[(i-1+n)%n]
		up := d.U[(i+1)%n]
		out[i] = d.U[i] - c/2*(up-um) + c*c/2*(up-2*d.U[i]+um)
	}
	d.U = out
	d.StepCount++
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// frameMagic marks a serialized history frame.
const frameMagic = 0x57524631 // "WRF1"

// WriteFrame serializes the current state as one binary history frame.
func (d *Domain) WriteFrame(w io.Writer) error {
	hdr := []interface{}{
		uint32(frameMagic), uint32(d.N), uint64(d.StepCount),
		math.Float64bits(d.L), math.Float64bits(d.A),
	}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("wrf: frame header: %w", err)
		}
	}
	if err := binary.Write(w, binary.LittleEndian, d.U); err != nil {
		return fmt.Errorf("wrf: frame payload: %w", err)
	}
	return nil
}

// Frame is one deserialized history frame.
type Frame struct {
	N    int
	Step uint64
	L, A float64
	U    []float64
}

// ReadFrame deserializes one frame.
func ReadFrame(r io.Reader) (*Frame, error) {
	var magic, n uint32
	var step uint64
	var lBits, aBits uint64
	for _, p := range []interface{}{&magic, &n, &step, &lBits, &aBits} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("wrf: frame header: %w", err)
		}
	}
	if magic != frameMagic {
		return nil, fmt.Errorf("wrf: bad frame magic %#x", magic)
	}
	if n == 0 || n > 1<<28 {
		return nil, fmt.Errorf("wrf: implausible frame size %d", n)
	}
	f := &Frame{N: int(n), Step: step,
		L: math.Float64frombits(lBits), A: math.Float64frombits(aBits),
		U: make([]float64, n)}
	if err := binary.Read(r, binary.LittleEndian, f.U); err != nil {
		return nil, fmt.Errorf("wrf: frame payload: %w", err)
	}
	return f, nil
}

// RunWithIO advances `steps` steps, writing a frame to w every frameEvery
// steps (w may be nil for the IO-disabled runs). It returns the number of
// frames written.
func (d *Domain) RunWithIO(steps, frameEvery int, w io.Writer) (int, error) {
	return d.RunWithIOContext(context.Background(), steps, frameEvery, w)
}

// RunWithIOContext is RunWithIO under a context, checked between steps
// so a job deadline can abort a long integration mid-run.
func (d *Domain) RunWithIOContext(ctx context.Context, steps, frameEvery int, w io.Writer) (int, error) {
	if steps < 0 || frameEvery <= 0 {
		return 0, fmt.Errorf("wrf: invalid run parameters")
	}
	frames := 0
	for s := 1; s <= steps; s++ {
		if err := ctx.Err(); err != nil {
			return frames, err
		}
		d.Step()
		if w != nil && s%frameEvery == 0 {
			if err := d.WriteFrame(w); err != nil {
				return frames, err
			}
			frames++
		}
	}
	return frames, nil
}
