package wrf

import (
	"fmt"

	"clustereval/internal/apps/scaling"
	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/perfmodel"
	"clustereval/internal/sched"
	"clustereval/internal/toolchain"
	"clustereval/internal/units"
)

// Config describes a WRF case.
type Config struct {
	Name string
	// Grid: columns x levels.
	Columns float64
	Levels  float64
	Steps   int
	Frames  int

	// Per grid point per step (efficiencies folded in):
	IrrFlops float64 // physics/dynamics loops the compilers leave scalar
	Bytes    float64 // DRAM traffic

	// Halo exchange: fields exchanged per step and the scalar pack/unpack
	// cost per halo byte. Packing is what tips the balance against the
	// A64FX at scale (2.16x at 1 node -> 2.23x at 64).
	HaloFields       float64
	PackFlopsPerByte float64

	// IO: bytes per history frame and the shared-filesystem bandwidth.
	FrameBytes       float64
	FSBandwidthBytes float64
}

// Iberia4km returns the paper's input: the Iberian peninsula at 4 km
// resolution, 56 simulated hours, 54 hourly output frames.
func Iberia4km() Config {
	return Config{
		Name:    "Iberia 4km 56h",
		Columns: 540 * 420,
		Levels:  50,
		Steps:   8400, // 24 s time step over 56 h
		Frames:  54,

		IrrFlops: 1600,
		Bytes:    424,

		HaloFields:       8,
		PackFlopsPerByte: 12,

		FrameBytes:       80e6,
		FSBandwidthBytes: 5e9,
	}
}

// Model predicts WRF times on one machine.
type Model struct {
	Machine machine.Machine
	Config  Config
	exec    *perfmodel.Exec
	fabric  *interconnect.Fabric
}

// NewModel builds the model from the Table III build (GNU on CTE-Arm,
// Intel 2017.4 on MareNostrum 4).
func NewModel(m machine.Machine, cfg Config) (*Model, error) {
	build, ok := toolchain.AppBuildOn("WRF", m)
	if !ok {
		return nil, fmt.Errorf("wrf: no build configuration for machine %q", m.Name)
	}
	exec, err := perfmodel.NewExec(m, build.Compiler, "WRF")
	if err != nil {
		return nil, err
	}
	fab, err := interconnect.New(m, m.Nodes)
	if err != nil {
		return nil, err
	}
	return &Model{Machine: m, Config: cfg, exec: exec, fabric: fab}, nil
}

// Points returns the 3D grid size.
func (mod *Model) Points() float64 { return mod.Config.Columns * mod.Config.Levels }

// ElapsedTime models the full 56-hour simulation on `nodes` nodes
// (MPI-only, full nodes), with or without history output.
func (mod *Model) ElapsedTime(nodes int, ioEnabled bool) (units.Seconds, error) {
	if nodes <= 0 || nodes > mod.Machine.Nodes {
		return 0, fmt.Errorf("wrf: node count %d out of [1, %d]", nodes, mod.Machine.Nodes)
	}
	cfg := mod.Config
	cores := mod.Machine.Node.Cores()
	ranks := nodes * cores
	pts := mod.Points()

	irr := perfmodel.Work{Flops: pts * cfg.IrrFlops / float64(nodes), Kind: toolchain.IrregularCode}
	mem := perfmodel.Work{Bytes: pts * cfg.Bytes / float64(nodes), Kind: toolchain.RegularLoop}
	perStep := mod.exec.Time(irr, cores) + mod.exec.Time(mem, cores)

	if nodes > 1 {
		alloc, err := sched.New(mod.fabric.Topo, sched.TopologyAware, 1).Allocate(nodes)
		if err != nil {
			return 0, err
		}
		comm := perfmodel.NewCommCost(mod.fabric, alloc)
		colsPerRank := cfg.Columns / float64(ranks)
		side := sqrt(colsPerRank)
		sideBytes := units.Bytes(side * cfg.Levels * 8 * cfg.HaloFields)
		perStep += comm.HaloExchange(4, sideBytes)
		// Scalar pack/unpack of the four halo buffers.
		packBytes := 4 * float64(sideBytes)
		irrRate := float64(mod.exec.CoreFlops(toolchain.IrregularCode))
		perStep += units.Seconds(packBytes * cfg.PackFlopsPerByte / irrRate)
	}

	total := perStep * units.Seconds(float64(cfg.Steps))
	if ioEnabled {
		// History frames: gathered and written to the shared filesystem,
		// blocking the computation (no IO quilting in the paper's setup).
		frameTime := cfg.FrameBytes / cfg.FSBandwidthBytes
		total += units.Seconds(float64(cfg.Frames) * frameTime)
	}
	return total, nil
}

// sqrt is Newton's method, avoiding a math import for one call.
func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 40; i++ {
		g = (g + x/g) / 2
	}
	return g
}

// NodeSweep is the paper's Fig. 16 node range.
func NodeSweep() []int { return []int{1, 2, 4, 8, 16, 32, 64} }

// SweepOn returns the Iberia-4km curves (IO enabled and disabled) on an
// arbitrary machine: the paper's node range on the paper machines, a
// doubling ladder elsewhere.
func SweepOn(m machine.Machine) ([]scaling.Series, error) {
	mod, err := NewModel(m, Iberia4km())
	if err != nil {
		return nil, err
	}
	counts := NodeSweep()
	if m.Name != "CTE-Arm" && m.Name != "MareNostrum 4" {
		counts = scaling.DoublingSweep(1, m.Nodes)
	}
	var out []scaling.Series
	for _, ioOn := range []bool{true, false} {
		label := "IO disabled"
		if ioOn {
			label = "IO enabled"
		}
		s := scaling.Series{Machine: m.Name, Label: label}
		for _, n := range counts {
			t, err := mod.ElapsedTime(n, ioOn)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, scaling.Point{Nodes: n, Time: t})
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure16 returns the four curves of Fig. 16: each machine with IO
// enabled and disabled.
func Figure16(arm, mn4 machine.Machine) ([]scaling.Series, error) {
	var out []scaling.Series
	for _, m := range []machine.Machine{arm, mn4} {
		mod, err := NewModel(m, Iberia4km())
		if err != nil {
			return nil, err
		}
		for _, ioOn := range []bool{true, false} {
			label := "IO disabled"
			if ioOn {
				label = "IO enabled"
			}
			s := scaling.Series{Machine: m.Name, Label: label}
			for _, n := range NodeSweep() {
				t, err := mod.ElapsedTime(n, ioOn)
				if err != nil {
					return nil, err
				}
				s.Points = append(s.Points, scaling.Point{Nodes: n, Time: t})
			}
			out = append(out, s)
		}
	}
	return out, nil
}
