package wrf

import (
	"bytes"
	"math"
	"testing"

	"clustereval/internal/machine"
)

// --- Real dynamics + IO proxy ---

func TestLaxWendroffAdvectsSine(t *testing.T) {
	const n = 256
	L := 1.0
	d, err := NewDomain(n, L, 0.5, 0.8, func(x float64) float64 {
		return math.Sin(2 * math.Pi * x)
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := 200
	for i := 0; i < steps; i++ {
		d.Step()
	}
	tt := float64(steps) * d.Dt()
	maxErr := 0.0
	for i := range d.U {
		x := L * float64(i) / n
		want := math.Sin(2 * math.Pi * (x - 0.5*tt))
		if e := math.Abs(d.U[i] - want); e > maxErr {
			maxErr = e
		}
	}
	// Second-order scheme on a well-resolved sine: small phase error.
	if maxErr > 0.02 {
		t.Errorf("max error = %v", maxErr)
	}
}

func TestLaxWendroffSecondOrder(t *testing.T) {
	errAt := func(n int) float64 {
		d, _ := NewDomain(n, 1, 1, 0.5, func(x float64) float64 {
			return math.Sin(2 * math.Pi * x)
		})
		// Advect exactly one period: u should return to the start.
		steps := int(math.Round(1 / (d.Dt() * d.A)))
		for i := 0; i < steps; i++ {
			d.Step()
		}
		max := 0.0
		for i := range d.U {
			x := float64(i) / float64(n)
			if e := math.Abs(d.U[i] - math.Sin(2*math.Pi*x)); e > max {
				max = e
			}
		}
		return max
	}
	e1, e2 := errAt(64), errAt(128)
	order := math.Log2(e1 / e2)
	if order < 1.6 || order > 2.6 {
		t.Errorf("convergence order = %.2f, want ~2", order)
	}
}

func TestLaxWendroffStableAtCFL1(t *testing.T) {
	d, _ := NewDomain(64, 1, 1, 1.0, func(x float64) float64 {
		if x < 0.5 {
			return 1
		}
		return 0
	})
	for i := 0; i < 500; i++ {
		d.Step()
	}
	for i, v := range d.U {
		if math.IsNaN(v) || math.Abs(v) > 2 {
			t.Fatalf("instability at %d: %v", i, v)
		}
	}
}

func TestDomainValidation(t *testing.T) {
	f := func(x float64) float64 { return 0 }
	if _, err := NewDomain(2, 1, 1, 0.5, f); err == nil {
		t.Error("tiny grid accepted")
	}
	if _, err := NewDomain(16, -1, 1, 0.5, f); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := NewDomain(16, 1, 1, 1.5, f); err == nil {
		t.Error("unstable CFL accepted")
	}
	if _, err := NewDomain(16, 1, 1, 0, f); err == nil {
		t.Error("zero CFL accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	d, _ := NewDomain(32, 2, -0.7, 0.9, func(x float64) float64 { return math.Cos(x) })
	d.Step()
	d.Step()
	var buf bytes.Buffer
	if err := d.WriteFrame(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.N != 32 || f.Step != 2 || f.L != 2 || f.A != -0.7 {
		t.Errorf("frame metadata: %+v", f)
	}
	for i := range f.U {
		if f.U[i] != d.U[i] {
			t.Fatalf("frame payload mismatch at %d", i)
		}
	}
}

func TestReadFrameErrors(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	bad := make([]byte, 64)
	if _, err := ReadFrame(bytes.NewReader(bad)); err == nil {
		t.Error("garbage magic accepted")
	}
}

func TestRunWithIO(t *testing.T) {
	d, _ := NewDomain(16, 1, 1, 0.5, func(x float64) float64 { return x })
	var buf bytes.Buffer
	frames, err := d.RunWithIO(56, 10, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if frames != 5 {
		t.Errorf("frames = %d, want 5", frames)
	}
	// All frames parse back in order.
	r := bytes.NewReader(buf.Bytes())
	for i := 1; i <= 5; i++ {
		f, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Step != uint64(i*10) {
			t.Errorf("frame %d at step %d", i, f.Step)
		}
	}
	// IO-disabled run writes nothing.
	d2, _ := NewDomain(16, 1, 1, 0.5, func(x float64) float64 { return x })
	frames, err = d2.RunWithIO(56, 10, nil)
	if err != nil || frames != 0 {
		t.Errorf("nil writer: frames=%d err=%v", frames, err)
	}
	if _, err := d2.RunWithIO(-1, 10, nil); err == nil {
		t.Error("negative steps accepted")
	}
	if _, err := d2.RunWithIO(5, 0, nil); err == nil {
		t.Error("zero frame interval accepted")
	}
}

// --- Paper-scale model ---

func TestFig16Anchors(t *testing.T) {
	ma, err := NewModel(machine.CTEArm(), Iberia4km())
	if err != nil {
		t.Fatal(err)
	}
	mm, err := NewModel(machine.MareNostrum4(), Iberia4km())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 2.16x slower at 1 node, 2.23x at 64 nodes (IO enabled).
	ta1, _ := ma.ElapsedTime(1, true)
	tm1, _ := mm.ElapsedTime(1, true)
	if r := float64(ta1) / float64(tm1); math.Abs(r-2.16) > 0.1 {
		t.Errorf("1-node slowdown = %.2f, paper 2.16", r)
	}
	ta64, _ := ma.ElapsedTime(64, true)
	tm64, _ := mm.ElapsedTime(64, true)
	if r := float64(ta64) / float64(tm64); math.Abs(r-2.23) > 0.12 {
		t.Errorf("64-node slowdown = %.2f, paper 2.23", r)
	}
}

func TestIOMakesLittleDifference(t *testing.T) {
	// "There is little difference in time between the runs that enable IO
	// and the runs that do not, giving the runs with IO disabled a slight
	// advantage."
	for _, m := range []machine.Machine{machine.CTEArm(), machine.MareNostrum4()} {
		mod, err := NewModel(m, Iberia4km())
		if err != nil {
			t.Fatal(err)
		}
		for _, nodes := range NodeSweep() {
			on, _ := mod.ElapsedTime(nodes, true)
			off, _ := mod.ElapsedTime(nodes, false)
			if on <= off {
				t.Errorf("%s nodes=%d: IO-enabled %v not above IO-disabled %v",
					m.Name, nodes, on, off)
			}
			if rel := (float64(on) - float64(off)) / float64(off); rel > 0.10 {
				t.Errorf("%s nodes=%d: IO adds %.1f%%, paper sees little difference",
					m.Name, nodes, 100*rel)
			}
		}
	}
}

func TestMN4ConsistentlyOutperforms(t *testing.T) {
	series, err := Figure16(machine.CTEArm(), machine.MareNostrum4())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("%d series, want 4", len(series))
	}
	// Match IO-enabled curves of the two machines.
	var cte, mn4 *int
	for i := range series {
		if series[i].Label == "IO enabled" {
			if series[i].Machine == "CTE-Arm" {
				cte = &i
			} else {
				i := i
				mn4 = &i
			}
		}
	}
	if cte == nil || mn4 == nil {
		t.Fatal("missing IO-enabled series")
	}
	for _, n := range NodeSweep() {
		ta, _ := series[*cte].TimeAt(n)
		tm, _ := series[*mn4].TimeAt(n)
		if ta <= tm {
			t.Errorf("nodes=%d: MN4 not outperforming (%v vs %v)", n, tm, ta)
		}
	}
}

func TestScalingMonotone(t *testing.T) {
	mod, _ := NewModel(machine.CTEArm(), Iberia4km())
	prev := math.Inf(1)
	for _, n := range NodeSweep() {
		tt, err := mod.ElapsedTime(n, false)
		if err != nil {
			t.Fatal(err)
		}
		if float64(tt) >= prev {
			t.Errorf("time not decreasing at %d nodes", n)
		}
		prev = float64(tt)
	}
}

func TestElapsedTimeValidation(t *testing.T) {
	mod, _ := NewModel(machine.CTEArm(), Iberia4km())
	if _, err := mod.ElapsedTime(0, true); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := mod.ElapsedTime(500, true); err == nil {
		t.Error("oversized accepted")
	}
	m := machine.CTEArm()
	m.Name = "x"
	m.CPUName = "POWER9"
	m.Arch = "POWER"
	if _, err := NewModel(m, Iberia4km()); err == nil {
		t.Error("machine with unknown silicon accepted")
	}
}

func TestSqrtHelper(t *testing.T) {
	for _, x := range []float64{1, 2, 73.8, 1e6} {
		if got := sqrt(x); math.Abs(got-math.Sqrt(x)) > 1e-9*math.Sqrt(x) {
			t.Errorf("sqrt(%v) = %v", x, got)
		}
	}
	if sqrt(0) != 0 || sqrt(-1) != 0 {
		t.Error("sqrt edge cases")
	}
}
