package openifs

import (
	"fmt"

	"clustereval/internal/apps/scaling"
	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/memsim"
	"clustereval/internal/omp"
	"clustereval/internal/perfmodel"
	"clustereval/internal/sched"
	"clustereval/internal/toolchain"
	"clustereval/internal/units"
)

// Config describes an OpenIFS input set.
type Config struct {
	Name        string
	Columns     float64 // grid columns
	Levels      float64
	StepsPerDay float64

	// Per grid point per simulated day (efficiencies folded in):
	PhysFlops float64 // grid-point physics: branchy, never vectorized
	DynFlops  float64 // dynamics: vectorizable app loops
	SpecFlops float64 // spectral transforms via BLAS (internal vs MKL)
	Bytes     float64 // DRAM traffic

	// Transpositions between grid-point and spectral space: per step,
	// TranspositionsPerStep all-to-alls of SpectralBytes total volume.
	TranspositionsPerStep float64
	SpectralBytes         float64
	// PipeFactor scales the rank-count latency term of a pipelined
	// all-to-all (messages overlap ~8 deep).
	PipeFactor float64

	// MemBytesPerPoint sets the memory floor.
	MemBytesPerPoint float64
}

// TL255L91 is the single-node input of Fig. 14.
func TL255L91() Config {
	return Config{
		Name:        "TL255L91",
		Columns:     348528,
		Levels:      91,
		StepsPerDay: 2700,

		PhysFlops: 1.37e6,
		DynFlops:  2.50e6,
		SpecFlops: 3.90e6,
		Bytes:     300e3,

		TranspositionsPerStep: 2,
		SpectralBytes:         24e6,
		PipeFactor:            0.122,
		MemBytesPerPoint:      300,
	}
}

// TC0511L91 is the multi-node input of Fig. 15: ~4.5x the columns of
// TL255 at half the time step, with a dynamics-heavier mix (higher
// resolution shifts work into the dynamical core).
func TC0511L91() Config {
	return Config{
		Name:        "TC0511L91",
		Columns:     1.57e6,
		Levels:      91,
		StepsPerDay: 5400,

		PhysFlops: 1.52e6,
		DynFlops:  3.10e6,
		SpecFlops: 2.20e6,
		Bytes:     115e3,

		TranspositionsPerStep: 2,
		SpectralBytes:         190e6,
		PipeFactor:            0.06,
		// The memory floor the paper reports: a minimum of 32 A64FX nodes.
		MemBytesPerPoint: 2500,
	}
}

// Model predicts OpenIFS times on one machine.
type Model struct {
	Machine machine.Machine
	Config  Config
	exec    *perfmodel.Exec
	fabric  *interconnect.Fabric
}

// NewModel builds the model from the Table III build (GNU on CTE-Arm with
// internal BLAS/LAPACK — the Fujitsu build compiled but failed at runtime —
// Intel + MKL on MareNostrum 4).
func NewModel(m machine.Machine, cfg Config) (*Model, error) {
	build, ok := toolchain.AppBuildOn("OpenIFS", m)
	if !ok {
		return nil, fmt.Errorf("openifs: no build configuration for machine %q", m.Name)
	}
	exec, err := perfmodel.NewExec(m, build.Compiler, "OpenIFS")
	if err != nil {
		return nil, err
	}
	fab, err := interconnect.New(m, m.Nodes)
	if err != nil {
		return nil, err
	}
	return &Model{Machine: m, Config: cfg, exec: exec, fabric: fab}, nil
}

// Points returns the 3D grid size.
func (mod *Model) Points() float64 { return mod.Config.Columns * mod.Config.Levels }

// MinNodes returns the memory floor (32 CTE-Arm nodes for TC0511L91).
func (mod *Model) MinNodes() int {
	need := mod.Points() * mod.Config.MemBytesPerPoint
	perNode := mod.Machine.UsableMemory(mod.Machine.Node.Cores())
	if perNode <= 0 {
		return mod.Machine.Nodes + 1
	}
	n := 1
	for float64(n)*perNode < need {
		n++
	}
	return n
}

// DayTime models the time to simulate one forecast day using `ranks` MPI
// ranks over `nodes` nodes (MPI-only, as the paper runs it).
func (mod *Model) DayTime(nodes, ranks int) (units.Seconds, error) {
	if nodes < mod.MinNodes() {
		return 0, fmt.Errorf("openifs: %s needs >= %d nodes for %s",
			mod.Machine.Name, mod.MinNodes(), mod.Config.Name)
	}
	if nodes > mod.Machine.Nodes {
		return 0, fmt.Errorf("openifs: %d nodes exceed the cluster", nodes)
	}
	coresPerNode := mod.Machine.Node.Cores()
	if ranks <= 0 || ranks > nodes*coresPerNode {
		return 0, fmt.Errorf("openifs: %d ranks do not fit %d nodes", ranks, nodes)
	}
	cfg := mod.Config
	pts := mod.Points()
	ranksPerNode := (ranks + nodes - 1) / nodes

	phys := perfmodel.Work{Flops: pts * cfg.PhysFlops / float64(nodes), Kind: toolchain.IrregularCode}
	dyn := perfmodel.Work{Flops: pts * cfg.DynFlops / float64(nodes), Kind: toolchain.AppLoop}
	spec := perfmodel.Work{Flops: pts * cfg.SpecFlops / float64(nodes), Kind: toolchain.CompactLoop}

	t := mod.exec.Time(phys, ranksPerNode) +
		mod.exec.Time(dyn, ranksPerNode) +
		mod.exec.Time(spec, ranksPerNode)

	// Memory traffic at the bandwidth the occupied cores can actually
	// extract (ranks bound spread across domains): an under-populated
	// node is not limited to its proportional bandwidth share, which is
	// why the paper's single-node gap narrows from 3.72x at 8 ranks to
	// 3.28x at 48 (MareNostrum 4 saturates its DDR4 as ranks fill up).
	bw, err := mod.availableBW(ranksPerNode)
	if err != nil {
		return 0, err
	}
	t += units.TimeFor(units.Bytes(pts*cfg.Bytes/float64(nodes)), bw)

	if nodes > 1 {
		alloc, err := sched.New(mod.fabric.Topo, sched.TopologyAware, 1).Allocate(nodes)
		if err != nil {
			return 0, err
		}
		comm := perfmodel.NewCommCost(mod.fabric, alloc)
		// Each transposition: a pipelined rank-level all-to-all. The
		// latency term grows with the rank count; the volume term moves
		// the spectral state once per transposition.
		perTransposition := units.Seconds(cfg.PipeFactor*float64(ranks))*comm.Alpha +
			units.TimeFor(units.Bytes(cfg.SpectralBytes/float64(nodes)), mod.Machine.Network.LinkPeak)
		t += units.Seconds(cfg.TranspositionsPerStep*cfg.StepsPerDay) * perTransposition
	}
	return t, nil
}

// availableBW returns the per-node streaming bandwidth `ranksPerNode`
// ranks can extract with spread binding.
func (mod *Model) availableBW(ranksPerNode int) (units.BytesPerSecond, error) {
	node := mod.Machine.Node
	if ranksPerNode > node.Cores() {
		ranksPerNode = node.Cores()
	}
	team, err := omp.NewTeam(node, ranksPerNode, omp.Spread)
	if err != nil {
		return 0, err
	}
	return memsim.TeamBandwidth(team, false, 1.0)
}

// Figure14 returns the single-node curves (x = MPI ranks, y = seconds per
// simulated day) for TL255L91.
func Figure14(arm, mn4 machine.Machine) (cte, ref scaling.Series, err error) {
	rankSweep := []int{8, 12, 16, 24, 32, 48}
	ma, err := NewModel(arm, TL255L91())
	if err != nil {
		return
	}
	mm, err := NewModel(mn4, TL255L91())
	if err != nil {
		return
	}
	cte = scaling.Series{Machine: arm.Name}
	ref = scaling.Series{Machine: mn4.Name}
	for _, r := range rankSweep {
		ta, err2 := ma.DayTime(1, r)
		if err2 != nil {
			return cte, ref, err2
		}
		tm, err2 := mm.DayTime(1, r)
		if err2 != nil {
			return cte, ref, err2
		}
		cte.Points = append(cte.Points, scaling.Point{Nodes: r, Time: ta})
		ref.Points = append(ref.Points, scaling.Point{Nodes: r, Time: tm})
	}
	return cte, ref, nil
}

// SweepOn returns the TC0511L91 multi-node curve on an arbitrary machine:
// the paper's node range on the paper machines, a doubling ladder from the
// memory floor elsewhere (full nodes of MPI ranks either way).
func SweepOn(m machine.Machine) ([]scaling.Series, error) {
	mod, err := NewModel(m, TC0511L91())
	if err != nil {
		return nil, err
	}
	counts := []int{32, 48, 64, 96, 128}
	if m.Name != "CTE-Arm" && m.Name != "MareNostrum 4" {
		counts = scaling.DoublingSweep(mod.MinNodes(), m.Nodes)
	}
	s := scaling.Series{Machine: m.Name}
	for _, n := range counts {
		t, err := mod.DayTime(n, n*m.Node.Cores())
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, scaling.Point{Nodes: n, Time: t})
	}
	return []scaling.Series{s}, nil
}

// Figure15 returns the multi-node curves (x = nodes, full nodes of ranks)
// for TC0511L91.
func Figure15(arm, mn4 machine.Machine) (cte, ref scaling.Series, err error) {
	nodeSweep := []int{32, 48, 64, 96, 128}
	ma, err := NewModel(arm, TC0511L91())
	if err != nil {
		return
	}
	mm, err := NewModel(mn4, TC0511L91())
	if err != nil {
		return
	}
	cte = scaling.Series{Machine: arm.Name}
	ref = scaling.Series{Machine: mn4.Name}
	for _, n := range nodeSweep {
		ta, err2 := ma.DayTime(n, n*arm.Node.Cores())
		if err2 != nil {
			return cte, ref, err2
		}
		tm, err2 := mm.DayTime(n, n*mn4.Node.Cores())
		if err2 != nil {
			return cte, ref, err2
		}
		cte.Points = append(cte.Points, scaling.Point{Nodes: n, Time: ta})
		ref.Points = append(ref.Points, scaling.Point{Nodes: n, Time: tm})
	}
	return cte, ref, nil
}
