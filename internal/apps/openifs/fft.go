// Package openifs reproduces the paper's OpenIFS experiments (Section V-D).
//
// OpenIFS is ECMWF's spectral numerical-weather-prediction system. The
// paper runs the TL255L91 input on single nodes (Fig. 14) and TC0511L91
// across nodes (Fig. 15).
//
// The package provides (i) real spectral machinery — an iterative radix-2
// FFT and a semi-implicit spectral solver for the 1D advection-diffusion
// equation, verified against analytic solutions — the same transform +
// grid-point-physics structure the real model has; and (ii) the paper-scale
// performance model regenerating Figs. 14 and 15 and the OpenIFS row of
// Table IV.
package openifs

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes the in-place forward discrete Fourier transform of x using
// the iterative radix-2 Cooley-Tukey algorithm. len(x) must be a power of
// two.
func FFT(x []complex128) error {
	return fft(x, false)
}

// IFFT computes the in-place inverse transform (including the 1/N scale).
func IFFT(x []complex128) error {
	if err := fft(x, true); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

func fft(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("openifs: FFT length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		ang := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	return nil
}

// SpectralDerivative returns du/dx of a periodic real signal sampled at n
// (power of two) points over [0, L), computed in spectral space.
func SpectralDerivative(u []float64, L float64) ([]float64, error) {
	n := len(u)
	if L <= 0 {
		return nil, fmt.Errorf("openifs: domain length must be positive")
	}
	c := make([]complex128, n)
	for i, v := range u {
		c[i] = complex(v, 0)
	}
	if err := FFT(c); err != nil {
		return nil, err
	}
	for k := 0; k < n; k++ {
		kk := k
		if k > n/2 {
			kk = k - n
		}
		if k == n/2 {
			// Nyquist mode: derivative of the sawtooth mode is zero for
			// real signals.
			c[k] = 0
			continue
		}
		ik := complex(0, 2*math.Pi*float64(kk)/L)
		c[k] *= ik
	}
	if err := IFFT(c); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = real(c[i])
	}
	return out, nil
}

// SpectralSolver advances the 1D advection-diffusion equation
// u_t + a u_x = nu u_xx on a periodic domain using exact integration of
// each Fourier mode — the semi-implicit spectral treatment IFS applies to
// its linear terms.
type SpectralSolver struct {
	N     int
	L     float64
	A, Nu float64
	coefs []complex128
}

// NewSpectralSolver transforms the initial condition into spectral space.
func NewSpectralSolver(u0 []float64, L, a, nu float64) (*SpectralSolver, error) {
	n := len(u0)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("openifs: grid size %d must be a power of two", n)
	}
	if L <= 0 || nu < 0 {
		return nil, fmt.Errorf("openifs: invalid domain (L=%v, nu=%v)", L, nu)
	}
	c := make([]complex128, n)
	for i, v := range u0 {
		c[i] = complex(v, 0)
	}
	if err := FFT(c); err != nil {
		return nil, err
	}
	return &SpectralSolver{N: n, L: L, A: a, Nu: nu, coefs: c}, nil
}

// Step advances the solution by dt: each mode k evolves by
// exp((-i a k - nu k^2) dt), exactly.
func (s *SpectralSolver) Step(dt float64) {
	for k := 0; k < s.N; k++ {
		kk := k
		if k > s.N/2 {
			kk = k - s.N
		}
		wave := 2 * math.Pi * float64(kk) / s.L
		decay := math.Exp(-s.Nu * wave * wave * dt)
		phase := -s.A * wave * dt
		rot := complex(math.Cos(phase), math.Sin(phase))
		s.coefs[k] *= complex(decay, 0) * rot
	}
}

// Grid returns the current solution in grid-point space.
func (s *SpectralSolver) Grid() ([]float64, error) {
	c := append([]complex128(nil), s.coefs...)
	if err := IFFT(c); err != nil {
		return nil, err
	}
	out := make([]float64, s.N)
	for i := range out {
		out[i] = real(c[i])
	}
	return out, nil
}
