package openifs

import (
	"math"
	"math/cmplx"
	"testing"

	"clustereval/internal/apps/scaling"
	"clustereval/internal/machine"
)

// --- Real spectral machinery ---

func TestFFTMatchesNaiveDFT(t *testing.T) {
	const n = 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(float64(i)*0.7), math.Cos(float64(i)*1.3))
	}
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / n
			want[k] += x[j] * cmplx.Exp(complex(0, ang))
		}
	}
	got := append([]complex128(nil), x...)
	if err := FFT(got); err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if cmplx.Abs(got[k]-want[k]) > 1e-9 {
			t.Fatalf("FFT[%d] = %v, DFT %v", k, got[k], want[k])
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 8, 256, 1024} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(float64(i%7)-3, float64(i%5))
		}
		orig := append([]complex128(nil), x...)
		if err := FFT(x); err != nil {
			t.Fatal(err)
		}
		if err := IFFT(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-10 {
				t.Fatalf("n=%d: round trip failed at %d", n, i)
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	const n = 128
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Sin(0.3*float64(i)), 0)
	}
	timeE := 0.0
	for _, v := range x {
		timeE += real(v)*real(v) + imag(v)*imag(v)
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	freqE := 0.0
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-9*timeE {
		t.Errorf("Parseval violated: %v vs %v", freqE/float64(n), timeE)
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 12)); err == nil {
		t.Error("length 12 accepted")
	}
	if err := FFT(nil); err == nil {
		t.Error("empty accepted")
	}
	if err := IFFT(make([]complex128, 3)); err == nil {
		t.Error("IFFT length 3 accepted")
	}
}

func TestSpectralDerivativeExact(t *testing.T) {
	// d/dx sin(2*pi*3x/L) = (6*pi/L) cos(...): spectral differentiation is
	// exact for resolved modes.
	const n = 64
	L := 2.0
	u := make([]float64, n)
	for i := range u {
		x := L * float64(i) / n
		u[i] = math.Sin(2 * math.Pi * 3 * x / L)
	}
	du, err := SpectralDerivative(u, L)
	if err != nil {
		t.Fatal(err)
	}
	for i := range du {
		x := L * float64(i) / n
		want := (2 * math.Pi * 3 / L) * math.Cos(2*math.Pi*3*x/L)
		if math.Abs(du[i]-want) > 1e-9 {
			t.Fatalf("derivative at %d: %v, want %v", i, du[i], want)
		}
	}
	if _, err := SpectralDerivative(u, 0); err == nil {
		t.Error("zero-length domain accepted")
	}
}

func TestSpectralSolverAdvectsAndDecays(t *testing.T) {
	// u_t + a u_x = nu u_xx with u0 = sin(kx) has the exact solution
	// exp(-nu k^2 t) sin(k(x - a t)).
	const n = 128
	L := 2 * math.Pi
	a, nu := 1.5, 0.02
	u0 := make([]float64, n)
	for i := range u0 {
		x := L * float64(i) / n
		u0[i] = math.Sin(2 * x)
	}
	s, err := NewSpectralSolver(u0, L, a, nu)
	if err != nil {
		t.Fatal(err)
	}
	const dt, steps = 0.01, 150
	for i := 0; i < steps; i++ {
		s.Step(dt)
	}
	u, err := s.Grid()
	if err != nil {
		t.Fatal(err)
	}
	tt := dt * steps
	for i := range u {
		x := L * float64(i) / n
		want := math.Exp(-nu*4*tt) * math.Sin(2*(x-a*tt))
		if math.Abs(u[i]-want) > 1e-9 {
			t.Fatalf("solution at %d: %v, want %v", i, u[i], want)
		}
	}
}

func TestSpectralSolverValidation(t *testing.T) {
	if _, err := NewSpectralSolver(make([]float64, 12), 1, 1, 0.1); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := NewSpectralSolver(make([]float64, 8), -1, 1, 0.1); err == nil {
		t.Error("negative domain accepted")
	}
	if _, err := NewSpectralSolver(make([]float64, 8), 1, 1, -0.1); err == nil {
		t.Error("negative diffusion accepted")
	}
}

// --- Paper-scale model ---

func TestFig14SingleNodeAnchors(t *testing.T) {
	ma, err := NewModel(machine.CTEArm(), TL255L91())
	if err != nil {
		t.Fatal(err)
	}
	mm, err := NewModel(machine.MareNostrum4(), TL255L91())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: with 8 ranks CTE-Arm is 3.72x slower; full node 3.28x.
	ta8, err := ma.DayTime(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	tm8, _ := mm.DayTime(1, 8)
	if r := float64(ta8) / float64(tm8); math.Abs(r-3.72) > 0.15 {
		t.Errorf("8-rank slowdown = %.2f, paper 3.72", r)
	}
	ta48, _ := ma.DayTime(1, 48)
	tm48, _ := mm.DayTime(1, 48)
	if r := float64(ta48) / float64(tm48); math.Abs(r-3.28) > 0.12 {
		t.Errorf("full-node slowdown = %.2f, paper 3.28", r)
	}
}

func TestFig15MultiNodeAnchors(t *testing.T) {
	cte, ref, err := Figure15(machine.CTEArm(), machine.MareNostrum4())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 3.55x at 32 nodes, 2.56x at 128.
	s32, err := scaling.Slowdown(cte, ref, 32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s32-3.55) > 0.15 {
		t.Errorf("32-node slowdown = %.2f, paper 3.55", s32)
	}
	s128, err := scaling.Slowdown(cte, ref, 128)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s128-2.56) > 0.12 {
		t.Errorf("128-node slowdown = %.2f, paper 2.56", s128)
	}
	// The gap narrows monotonically with scale (CTE profits from Tofu as
	// transpositions become latency-bound).
	if !(s128 < s32) {
		t.Error("gap should narrow with node count")
	}
}

func TestMemoryFloor32Nodes(t *testing.T) {
	ma, _ := NewModel(machine.CTEArm(), TC0511L91())
	if got := ma.MinNodes(); got != 32 {
		t.Errorf("TC0511L91 floor = %d CTE nodes, paper: 32", got)
	}
	// Table IV marks 16 nodes NP.
	if _, err := ma.DayTime(16, 16*48); err == nil {
		t.Error("16-node run accepted below the floor")
	}
	// TL255 fits on one node of either machine.
	ms, _ := NewModel(machine.CTEArm(), TL255L91())
	if got := ms.MinNodes(); got != 1 {
		t.Errorf("TL255L91 floor = %d, want 1", got)
	}
}

func TestTableIVOpenIFSRow(t *testing.T) {
	// Row: 0.31 (1 node, TL255), NP (16), 0.28 (32), 0.31 (64), 0.39 (128).
	maS, _ := NewModel(machine.CTEArm(), TL255L91())
	mmS, _ := NewModel(machine.MareNostrum4(), TL255L91())
	ta, _ := maS.DayTime(1, 48)
	tm, _ := mmS.DayTime(1, 48)
	if got := float64(tm) / float64(ta); math.Abs(got-0.31) > 0.02 {
		t.Errorf("1-node speedup = %.3f, paper 0.31", got)
	}

	maM, _ := NewModel(machine.CTEArm(), TC0511L91())
	mmM, _ := NewModel(machine.MareNostrum4(), TC0511L91())
	for _, c := range []struct {
		nodes int
		want  float64
	}{
		{32, 0.28}, {64, 0.31}, {128, 0.39},
	} {
		ta, err := maM.DayTime(c.nodes, c.nodes*48)
		if err != nil {
			t.Fatal(err)
		}
		tm, _ := mmM.DayTime(c.nodes, c.nodes*48)
		got := float64(tm) / float64(ta)
		if math.Abs(got-c.want) > 0.025 {
			t.Errorf("nodes=%d: speedup %.3f, paper %.2f", c.nodes, got, c.want)
		}
	}
}

func TestDayTimeValidation(t *testing.T) {
	mod, _ := NewModel(machine.CTEArm(), TL255L91())
	if _, err := mod.DayTime(1, 0); err == nil {
		t.Error("zero ranks accepted")
	}
	if _, err := mod.DayTime(1, 49); err == nil {
		t.Error("oversubscription accepted")
	}
	if _, err := mod.DayTime(500, 500); err == nil {
		t.Error("oversized accepted")
	}
}

func TestFigure14SeriesShape(t *testing.T) {
	cte, ref, err := Figure14(machine.CTEArm(), machine.MareNostrum4())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []scaling.Series{cte, ref} {
		pts := s.Sorted()
		if len(pts) != 6 {
			t.Fatalf("%s: %d points", s.Machine, len(pts))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Time >= pts[i-1].Time {
				t.Errorf("%s: time not decreasing with ranks", s.Machine)
			}
		}
	}
}

func TestModelRejectsUnknownMachine(t *testing.T) {
	m := machine.CTEArm()
	m.Name = "x"
	m.CPUName = "POWER9"
	m.Arch = "POWER"
	if _, err := NewModel(m, TL255L91()); err == nil {
		t.Error("machine with unknown silicon accepted")
	}
}
