package openifs

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"clustereval/internal/xrand"
)

// Property: FFT followed by IFFT is the identity for every power-of-two
// length and random input.
func TestFFTRoundTripProperty(t *testing.T) {
	f := func(seed uint64, expRaw uint8) bool {
		n := 1 << (expRaw%9 + 1) // 2 .. 512
		r := xrand.New(seed)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Float64()*2-1, r.Float64()*2-1)
		}
		orig := append([]complex128(nil), x...)
		if err := FFT(x); err != nil {
			return false
		}
		if err := IFFT(x); err != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the FFT is linear: FFT(a*x + y) = a*FFT(x) + FFT(y).
func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed uint64, aRaw uint8) bool {
		const n = 64
		a := complex(float64(aRaw%7)-3, 0)
		r := xrand.New(seed)
		x := make([]complex128, n)
		y := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Float64(), r.Float64())
			y[i] = complex(r.Float64(), r.Float64())
		}
		combined := make([]complex128, n)
		for i := range combined {
			combined[i] = a*x[i] + y[i]
		}
		if err := FFT(combined); err != nil {
			return false
		}
		if err := FFT(x); err != nil {
			return false
		}
		if err := FFT(y); err != nil {
			return false
		}
		for i := range combined {
			if cmplx.Abs(combined[i]-(a*x[i]+y[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the spectral solver conserves the mean (k=0 mode) exactly under
// pure advection, and never increases the L2 norm when diffusion is on.
func TestSpectralSolverNormProperty(t *testing.T) {
	f := func(seed uint64, stepsRaw uint8) bool {
		const n = 64
		r := xrand.New(seed)
		u0 := make([]float64, n)
		mean0 := 0.0
		for i := range u0 {
			u0[i] = r.Float64()*2 - 1
			mean0 += u0[i]
		}
		mean0 /= n
		s, err := NewSpectralSolver(u0, 2*math.Pi, 1.0, 0.05)
		if err != nil {
			return false
		}
		norm := func(u []float64) float64 {
			acc := 0.0
			for _, v := range u {
				acc += v * v
			}
			return acc
		}
		prev := norm(u0)
		steps := int(stepsRaw%20) + 1
		for i := 0; i < steps; i++ {
			s.Step(0.05)
		}
		u, err := s.Grid()
		if err != nil {
			return false
		}
		mean := 0.0
		for _, v := range u {
			mean += v
		}
		mean /= n
		if math.Abs(mean-mean0) > 1e-10 {
			return false
		}
		return norm(u) <= prev+1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
