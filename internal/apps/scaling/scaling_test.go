package scaling

import (
	"testing"

	"clustereval/internal/units"
)

func series(machine string, pts ...Point) Series {
	return Series{Machine: machine, Points: pts}
}

func TestSortedAndTimeAt(t *testing.T) {
	s := series("m", Point{Nodes: 8, Time: 10}, Point{Nodes: 2, Time: 40}, Point{Nodes: 4, Time: 20})
	sorted := s.Sorted()
	if sorted[0].Nodes != 2 || sorted[2].Nodes != 8 {
		t.Errorf("sorted = %v", sorted)
	}
	// Sorted must not mutate the original.
	if s.Points[0].Nodes != 8 {
		t.Error("Sorted mutated the series")
	}
	if tt, ok := s.TimeAt(4); !ok || tt != 20 {
		t.Errorf("TimeAt(4) = %v, %v", tt, ok)
	}
	if _, ok := s.TimeAt(3); ok {
		t.Error("TimeAt(3) should miss")
	}
}

func TestMinNodes(t *testing.T) {
	s := series("m", Point{Nodes: 12, Time: 1}, Point{Nodes: 8, Time: 2})
	if s.MinNodes() != 8 {
		t.Errorf("MinNodes = %d", s.MinNodes())
	}
	if (Series{}).MinNodes() != 0 {
		t.Error("empty series MinNodes should be 0")
	}
}

func TestSlowdown(t *testing.T) {
	a := series("cte", Point{Nodes: 12, Time: 85})
	b := series("mn4", Point{Nodes: 12, Time: 25})
	s, err := Slowdown(a, b, 12)
	if err != nil {
		t.Fatal(err)
	}
	if s != 3.4 {
		t.Errorf("slowdown = %v", s)
	}
	if _, err := Slowdown(a, b, 16); err == nil {
		t.Error("missing point accepted")
	}
	zero := series("z", Point{Nodes: 12, Time: 0})
	if _, err := Slowdown(a, zero, 12); err == nil {
		t.Error("zero reference accepted")
	}
}

func TestMatchingNodes(t *testing.T) {
	s := series("cte",
		Point{Nodes: 12, Time: 85}, Point{Nodes: 22, Time: 46},
		Point{Nodes: 44, Time: 24}, Point{Nodes: 78, Time: 14})
	if got := MatchingNodes(s, 25); got != 44 {
		t.Errorf("MatchingNodes = %d, want 44", got)
	}
	if got := MatchingNodes(s, 5); got != 0 {
		t.Errorf("unreachable target should give 0, got %d", got)
	}
	if got := MatchingNodes(s, 1000); got != 12 {
		t.Errorf("easy target should give the smallest run, got %d", got)
	}
}

func TestSpeedupRow(t *testing.T) {
	a := series("cte",
		Point{Nodes: 16, Time: units.Seconds(71.5)},
		Point{Nodes: 32, Time: units.Seconds(36)})
	b := series("mn4",
		Point{Nodes: 16, Time: units.Seconds(21.45)},
		Point{Nodes: 32, Time: units.Seconds(10.8)})
	row := SpeedupRow(a, b, []int{1, 16, 32, 64})
	if len(row) != 4 {
		t.Fatalf("row length %d", len(row))
	}
	if !row[0].NP {
		t.Errorf("1 node should be NP (below both floors): %+v", row[0])
	}
	if row[1].NP || row[1].NA || row[1].Speedup < 0.29 || row[1].Speedup > 0.31 {
		t.Errorf("16-node cell = %+v", row[1])
	}
	if !row[3].NA {
		t.Errorf("64 nodes unmeasured should be N/A: %+v", row[3])
	}
	if row[0].String() != "NP" || row[3].String() != "N/A" || row[1].String() != "0.30" {
		t.Errorf("cell strings: %s %s %s", row[0], row[3], row[1])
	}
}

func TestTableIVNodeCounts(t *testing.T) {
	want := []int{1, 16, 32, 64, 128, 192}
	got := TableIVNodeCounts()
	if len(got) != len(want) {
		t.Fatalf("%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%v", got)
		}
	}
}
