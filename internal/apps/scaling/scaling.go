// Package scaling holds the strong-scaling series type shared by the five
// application reproductions (Figs. 8-16) and the analysis helpers the paper
// applies to them: slowdown at equal node counts, node counts needed to
// match a reference time, and the Table IV speedup rows.
package scaling

import (
	"fmt"
	"sort"

	"clustereval/internal/units"
)

// Point is one run of a strong-scaling study.
type Point struct {
	Nodes int
	Time  units.Seconds
}

// Series is one machine's curve in a scalability figure.
type Series struct {
	Machine string
	Label   string // optional sub-label (e.g. "IO enabled", "Assembly")
	Points  []Point
}

// Sorted returns the points ordered by node count.
func (s Series) Sorted() []Point {
	pts := append([]Point(nil), s.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Nodes < pts[j].Nodes })
	return pts
}

// TimeAt returns the time at exactly `nodes`, if present.
func (s Series) TimeAt(nodes int) (units.Seconds, bool) {
	for _, p := range s.Points {
		if p.Nodes == nodes {
			return p.Time, true
		}
	}
	return 0, false
}

// MinNodes returns the smallest node count in the series (the memory floor
// the paper marks with "NP" below it).
func (s Series) MinNodes() int {
	if len(s.Points) == 0 {
		return 0
	}
	min := s.Points[0].Nodes
	for _, p := range s.Points {
		if p.Nodes < min {
			min = p.Nodes
		}
	}
	return min
}

// DoublingSweep returns a strong-scaling node ladder for machines outside
// the paper's tables: doubling counts from min upward, with max itself
// always included so the sweep reaches the machine's full partition.
func DoublingSweep(min, max int) []int {
	if min < 1 {
		min = 1
	}
	if max < min {
		return nil
	}
	var out []int
	for n := min; n < max; n *= 2 {
		out = append(out, n)
	}
	return append(out, max)
}

// Slowdown returns tA/tB at the given node count; both series must contain
// the point.
func Slowdown(a, b Series, nodes int) (float64, error) {
	ta, ok := a.TimeAt(nodes)
	if !ok {
		return 0, fmt.Errorf("scaling: %s has no %d-node point", a.Machine, nodes)
	}
	tb, ok := b.TimeAt(nodes)
	if !ok {
		return 0, fmt.Errorf("scaling: %s has no %d-node point", b.Machine, nodes)
	}
	if tb <= 0 {
		return 0, fmt.Errorf("scaling: non-positive reference time")
	}
	return float64(ta) / float64(tb), nil
}

// MatchingNodes returns the smallest node count in s whose time is at or
// below target — how the paper finds "44 A64FX nodes match 12 MareNostrum 4
// nodes". It returns 0 when no point reaches the target.
func MatchingNodes(s Series, target units.Seconds) int {
	for _, p := range s.Sorted() {
		if p.Time <= target {
			return p.Nodes
		}
	}
	return 0
}

// SpeedupCell is one entry of Table IV: performance of machine A relative
// to machine B at equal node count (time B / time A), or a marker.
type SpeedupCell struct {
	Nodes   int
	Speedup float64
	// NP marks "not possible" (memory floor); NA marks "no measurement".
	NP, NA bool
}

// String renders the cell the way Table IV prints it.
func (c SpeedupCell) String() string {
	switch {
	case c.NP:
		return "NP"
	case c.NA:
		return "N/A"
	default:
		return fmt.Sprintf("%.2f", c.Speedup)
	}
}

// SpeedupRow builds a Table IV row from two series over the table's node
// counts. A node count below either machine's memory floor yields NP; one
// that neither series measured yields N/A.
func SpeedupRow(a, b Series, nodeCounts []int) []SpeedupCell {
	row := make([]SpeedupCell, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		cell := SpeedupCell{Nodes: n}
		ta, okA := a.TimeAt(n)
		tb, okB := b.TimeAt(n)
		switch {
		case (len(a.Points) > 0 && n < a.MinNodes()) || (len(b.Points) > 0 && n < b.MinNodes()):
			cell.NP = true
		case !okA || !okB:
			cell.NA = true
		default:
			cell.Speedup = float64(tb) / float64(ta)
		}
		row = append(row, cell)
	}
	return row
}

// TableIVNodeCounts are the columns of Table IV.
func TableIVNodeCounts() []int { return []int{1, 16, 32, 64, 128, 192} }
