package alya

import (
	"fmt"

	"clustereval/internal/apps/scaling"
	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/perfmodel"
	"clustereval/internal/sched"
	"clustereval/internal/toolchain"
	"clustereval/internal/units"
)

// Config describes an Alya input set.
type Config struct {
	Name     string
	Elements float64
	// TimeSteps is the number of simulated steps; the first is discarded
	// when averaging, per the paper.
	TimeSteps int
	// MemPerElement (bytes) sets the memory floor: TestCaseB needs at
	// least 12 CTE-Arm nodes (32 GB each).
	MemPerElement float64

	// Assembly phase: per element per step.
	AsmFlopsPerElement float64
	AsmBytesPerElement float64
	// AsmEfficiency is the fraction of the compiler-sustained app-loop
	// rate the gather/scatter-heavy element loop achieves.
	AsmEfficiency float64

	// Solver phase: per element per CG iteration.
	SolverIters        int
	SolBytesPerElemIt  float64
	SolIrrFlopsPerElIt float64
	SolIrrEfficiency   float64

	// Partition quality (coefficient of variation of part sizes).
	PartitionSigma float64
	// Neighbours per rank in the unstructured halo.
	HaloNeighbors int
}

// TestCaseB returns the paper's input: a 132M-element sphere mesh, 20 time
// steps. The per-element constants are calibrated so that one MareNostrum 4
// time step on 12 nodes lands near 25 s with the assembly/solver split the
// paper implies (assembly ~= solver on MN4; assembly ratio 4.96x, solver
// ratio 1.79x, total 3.4x on CTE-Arm).
func TestCaseB() Config {
	return Config{
		Name:          "TestCaseB",
		Elements:      132e6,
		TimeSteps:     20,
		MemPerElement: 985,

		AsmFlopsPerElement: 50000,
		AsmBytesPerElement: 200,
		AsmEfficiency:      0.07,

		SolverIters:        500,
		SolBytesPerElemIt:  220,
		SolIrrFlopsPerElIt: 122,
		SolIrrEfficiency:   0.25,

		PartitionSigma: 0.035,
		HaloNeighbors:  24,
	}
}

// Model predicts Alya phase times on one machine.
type Model struct {
	Machine machine.Machine
	Config  Config
	exec    *perfmodel.Exec
	fabric  *interconnect.Fabric
}

// NewModel builds the model using the Table III compiler for the machine
// (GNU on CTE-Arm — the Fujitsu compiler hangs on Alya's modules — and GNU
// on MareNostrum 4).
func NewModel(m machine.Machine, cfg Config) (*Model, error) {
	build, ok := toolchain.AppBuildOn("Alya", m)
	if !ok {
		return nil, fmt.Errorf("alya: no build configuration for machine %q", m.Name)
	}
	exec, err := perfmodel.NewExec(m, build.Compiler, "Alya")
	if err != nil {
		return nil, err
	}
	fab, err := interconnect.New(m, m.Nodes)
	if err != nil {
		return nil, err
	}
	return &Model{Machine: m, Config: cfg, exec: exec, fabric: fab}, nil
}

// MinNodes returns the memory floor for this input on this machine,
// accounting for the MPI runtime's per-rank buffers (the paper's "single
// node memory limitations": 12 nodes on CTE-Arm).
func (mod *Model) MinNodes() int {
	need := mod.Config.Elements * mod.Config.MemPerElement
	perNode := mod.Machine.UsableMemory(mod.Machine.Node.Cores())
	if perNode <= 0 {
		return mod.Machine.Nodes + 1
	}
	n := 1
	for float64(n)*perNode < need {
		n++
	}
	return n
}

// StepTimes returns the assembly-phase, solver-phase and total time of one
// time step on `nodes` nodes (MPI-only, one rank per core). Phase times are
// those of the slowest process, i.e. they include partition imbalance, as
// the paper measures.
func (mod *Model) StepTimes(nodes int) (asm, sol, total units.Seconds, err error) {
	if nodes < mod.MinNodes() {
		return 0, 0, 0, fmt.Errorf("alya: %s needs >= %d nodes for %s (NP)",
			mod.Machine.Name, mod.MinNodes(), mod.Config.Name)
	}
	if nodes > mod.Machine.Nodes {
		return 0, 0, 0, fmt.Errorf("alya: %d nodes exceed the %d-node cluster", nodes, mod.Machine.Nodes)
	}
	cfg := mod.Config
	ranks := nodes * mod.Machine.Node.Cores()
	elemsPerNode := cfg.Elements / float64(nodes)
	imb := perfmodel.Imbalance(ranks, cfg.PartitionSigma)

	// Assembly: compute-bound element loop. The efficiency divisor models
	// the gather/scatter overhead relative to a clean app loop.
	asmWork := perfmodel.Work{
		Flops: elemsPerNode * cfg.AsmFlopsPerElement / cfg.AsmEfficiency,
		Bytes: elemsPerNode * cfg.AsmBytesPerElement,
		Kind:  toolchain.AppLoop,
	}
	asm = mod.exec.Time(asmWork, mod.Machine.Node.Cores()) * units.Seconds(imb)

	// Solver: per CG iteration, a bandwidth-bound SpMV plus an
	// indirection-heavy preconditioner that no compiler vectorizes.
	iters := float64(cfg.SolverIters)
	solMem := perfmodel.Work{
		Bytes: elemsPerNode * cfg.SolBytesPerElemIt * iters,
		Kind:  toolchain.RegularLoop,
	}
	solIrr := perfmodel.Work{
		Flops: elemsPerNode * cfg.SolIrrFlopsPerElIt * iters / cfg.SolIrrEfficiency,
		Kind:  toolchain.IrregularCode,
	}
	cores := mod.Machine.Node.Cores()
	solCompute := mod.exec.Time(solMem, cores) + mod.exec.Time(solIrr, cores)

	// Communication: two dot-product allreduces per iteration plus the
	// unstructured halo, on a topology-aware allocation.
	alloc, err := sched.New(mod.fabric.Topo, sched.TopologyAware, 1).Allocate(nodes)
	if err != nil {
		return 0, 0, 0, err
	}
	comm := perfmodel.NewCommCost(mod.fabric, alloc)
	elemsPerRank := cfg.Elements / float64(ranks)
	faceBytes := units.Bytes(8 * 6 * pow23(elemsPerRank) / float64(cfg.HaloNeighbors))
	perIter := 2*comm.Allreduce(ranks, 8) + comm.HaloExchange(cfg.HaloNeighbors, faceBytes)
	solComm := units.Seconds(iters) * perIter

	sol = solCompute*units.Seconds(imb) + solComm
	total = asm + sol
	return asm, sol, total, nil
}

// pow23 returns x^(2/3) without importing math for one call site.
func pow23(x float64) float64 {
	// x^(2/3) = (x^(1/3))^2 via Newton iterations on cube root.
	if x <= 0 {
		return 0
	}
	c := x
	for i := 0; i < 40; i++ {
		c = (2*c + x/(c*c)) / 3
	}
	return c * c
}

// phase selects which time StepTimes contributes to a figure.
type phase int

const (
	phaseTotal phase = iota
	phaseAssembly
	phaseSolver
)

func (mod *Model) series(label string, ph phase, nodeCounts []int) (scaling.Series, error) {
	s := scaling.Series{Machine: mod.Machine.Name, Label: label}
	for _, n := range nodeCounts {
		asm, sol, total, err := mod.StepTimes(n)
		if err != nil {
			return scaling.Series{}, err
		}
		t := total
		switch ph {
		case phaseAssembly:
			t = asm
		case phaseSolver:
			t = sol
		}
		s.Points = append(s.Points, scaling.Point{Nodes: n, Time: t})
	}
	return s, nil
}

// CTESweep is the node range the paper explores on CTE-Arm (12 to 78).
func CTESweep() []int { return []int{12, 14, 16, 22, 32, 44, 62, 78} }

// MN4Sweep is the node range the paper explores on MareNostrum 4, extended
// with the Table IV columns.
func MN4Sweep() []int { return []int{12, 14, 16, 32, 64} }

// SweepOn returns the time-step scalability curve on an arbitrary
// machine: the paper's node range on the paper machines, a doubling
// ladder from the memory floor to the full partition elsewhere.
func SweepOn(m machine.Machine) ([]scaling.Series, error) {
	mod, err := NewModel(m, TestCaseB())
	if err != nil {
		return nil, err
	}
	var counts []int
	switch m.Name {
	case "CTE-Arm":
		counts = CTESweep()
	case "MareNostrum 4":
		counts = MN4Sweep()
	default:
		counts = scaling.DoublingSweep(mod.MinNodes(), m.Nodes)
	}
	s, err := mod.series("time step", phaseTotal, counts)
	if err != nil {
		return nil, err
	}
	return []scaling.Series{s}, nil
}

// Figure8 returns the time-step scalability curves of Fig. 8.
func Figure8(arm, mn4 machine.Machine) (cte, ref scaling.Series, err error) {
	return figure(arm, mn4, phaseTotal, "time step")
}

// Figure9 returns the Assembly-phase curves of Fig. 9.
func Figure9(arm, mn4 machine.Machine) (cte, ref scaling.Series, err error) {
	return figure(arm, mn4, phaseAssembly, "Assembly")
}

// Figure10 returns the Solver-phase curves of Fig. 10.
func Figure10(arm, mn4 machine.Machine) (cte, ref scaling.Series, err error) {
	return figure(arm, mn4, phaseSolver, "Solver")
}

func figure(arm, mn4 machine.Machine, ph phase, label string) (scaling.Series, scaling.Series, error) {
	ma, err := NewModel(arm, TestCaseB())
	if err != nil {
		return scaling.Series{}, scaling.Series{}, err
	}
	mm, err := NewModel(mn4, TestCaseB())
	if err != nil {
		return scaling.Series{}, scaling.Series{}, err
	}
	cte, err := ma.series(label, ph, CTESweep())
	if err != nil {
		return scaling.Series{}, scaling.Series{}, err
	}
	ref, err := mm.series(label, ph, MN4Sweep())
	if err != nil {
		return scaling.Series{}, scaling.Series{}, err
	}
	return cte, ref, nil
}
