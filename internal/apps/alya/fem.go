// Package alya reproduces the paper's Alya experiments (Section V-A).
//
// Alya is BSC's multi-physics finite-element code; the paper runs the
// TestCaseB input (a 132-million-element sphere mesh) and dissects each
// time step into the compute-bound Assembly phase and the memory/
// communication-bound Solver phase.
//
// This package provides (i) a real FEM mini-proxy — P1 triangular element
// assembly and a conjugate-gradient solve on an unstructured-style mesh,
// verified against a manufactured solution — exercising exactly the two
// phases the paper measures, and (ii) the paper-scale performance model
// that regenerates Figs. 8, 9 and 10 and the Alya row of Table IV.
package alya

import (
	"fmt"
	"math"
)

// Mesh is a 2D triangulated unit square: (n+1)^2 vertices, 2n^2 P1
// triangles — structurally the same gather/scatter pattern as Alya's
// unstructured assembly.
type Mesh struct {
	N     int // squares per side
	Verts [][2]float64
	Tris  [][3]int
}

// NewMesh triangulates the unit square with n x n squares split into two
// triangles each.
func NewMesh(n int) (*Mesh, error) {
	if n <= 0 {
		return nil, fmt.Errorf("alya: mesh size %d must be positive", n)
	}
	m := &Mesh{N: n}
	for j := 0; j <= n; j++ {
		for i := 0; i <= n; i++ {
			m.Verts = append(m.Verts, [2]float64{float64(i) / float64(n), float64(j) / float64(n)})
		}
	}
	v := func(i, j int) int { return j*(n+1) + i }
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			m.Tris = append(m.Tris, [3]int{v(i, j), v(i+1, j), v(i, j+1)})
			m.Tris = append(m.Tris, [3]int{v(i+1, j), v(i+1, j+1), v(i, j+1)})
		}
	}
	return m, nil
}

// NumVerts returns the vertex count.
func (m *Mesh) NumVerts() int { return len(m.Verts) }

// Sparse is a symmetric sparse matrix in map-of-rows form — adequate for
// the proxy's problem sizes and mirrors Alya's scatter into a global
// matrix.
type Sparse struct {
	N    int
	Rows []map[int]float64
}

// NewSparse creates an n x n zero matrix.
func NewSparse(n int) *Sparse {
	rows := make([]map[int]float64, n)
	for i := range rows {
		rows[i] = make(map[int]float64)
	}
	return &Sparse{N: n, Rows: rows}
}

// Add scatters v into entry (i, j).
func (s *Sparse) Add(i, j int, v float64) { s.Rows[i][j] += v }

// MatVec computes y = A*x.
func (s *Sparse) MatVec(x, y []float64) {
	for i, row := range s.Rows {
		acc := 0.0
		for j, v := range row {
			acc += v * x[j]
		}
		y[i] = acc
	}
}

// System is the assembled linear system with Dirichlet boundary conditions
// eliminated by penalty.
type System struct {
	A *Sparse
	B []float64
}

// Assemble performs the element loop of the Assembly phase: for every P1
// triangle, compute the 3x3 local stiffness matrix and load vector for
// -∆u = f and scatter them into the global system. Dirichlet boundary
// u = g is imposed with a penalty term.
func Assemble(m *Mesh, f, g func(x, y float64) float64) *System {
	nv := m.NumVerts()
	sys := &System{A: NewSparse(nv), B: make([]float64, nv)}
	for _, tri := range m.Tris {
		p0, p1, p2 := m.Verts[tri[0]], m.Verts[tri[1]], m.Verts[tri[2]]
		// Jacobian and area.
		j11, j12 := p1[0]-p0[0], p2[0]-p0[0]
		j21, j22 := p1[1]-p0[1], p2[1]-p0[1]
		det := j11*j22 - j12*j21
		area := math.Abs(det) / 2
		// Gradients of the P1 basis functions.
		grads := [3][2]float64{
			{(j21 - j22) / det, (j12 - j11) / det},
			{j22 / det, -j12 / det},
			{-j21 / det, j11 / det},
		}
		// Stiffness: K_ab = area * grad_a . grad_b.
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				k := area * (grads[a][0]*grads[b][0] + grads[a][1]*grads[b][1])
				sys.A.Add(tri[a], tri[b], k)
			}
			// Load: one-point quadrature at the centroid.
			cx := (p0[0] + p1[0] + p2[0]) / 3
			cy := (p0[1] + p1[1] + p2[1]) / 3
			sys.B[tri[a]] += f(cx, cy) * area / 3
		}
	}
	// Dirichlet boundary by symmetric elimination: move known values to
	// the right-hand side, then replace boundary rows/columns with the
	// identity. This keeps the system SPD and well-conditioned for CG
	// (a penalty formulation would wreck CG's convergence).
	boundary := make([]bool, nv)
	bval := make([]float64, nv)
	for i, v := range m.Verts {
		if v[0] == 0 || v[0] == 1 || v[1] == 0 || v[1] == 1 {
			boundary[i] = true
			bval[i] = g(v[0], v[1])
		}
	}
	for i, row := range sys.A.Rows {
		if boundary[i] {
			continue
		}
		for j, a := range row {
			if boundary[j] {
				sys.B[i] -= a * bval[j]
				delete(row, j)
			}
		}
	}
	for i := range sys.A.Rows {
		if boundary[i] {
			sys.A.Rows[i] = map[int]float64{i: 1}
			sys.B[i] = bval[i]
		}
	}
	return sys
}

// SolveCG runs the Solver phase: plain conjugate gradients on the SPD
// system, returning the solution and the iteration count.
func (sys *System) SolveCG(maxIter int, tol float64) ([]float64, int, error) {
	if maxIter <= 0 {
		return nil, 0, fmt.Errorf("alya: maxIter must be positive")
	}
	n := sys.A.N
	x := make([]float64, n)
	r := append([]float64(nil), sys.B...)
	p := append([]float64(nil), sys.B...)
	ap := make([]float64, n)
	dot := func(a, b []float64) float64 {
		acc := 0.0
		for i := range a {
			acc += a[i] * b[i]
		}
		return acc
	}
	rr := dot(r, r)
	norm0 := math.Sqrt(rr)
	if norm0 == 0 {
		return x, 0, nil
	}
	for it := 1; it <= maxIter; it++ {
		sys.A.MatVec(p, ap)
		alpha := rr / dot(p, ap)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rrNew := dot(r, r)
		if math.Sqrt(rrNew) <= tol*norm0 {
			return x, it, nil
		}
		beta := rrNew / rr
		rr = rrNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	return nil, maxIter, fmt.Errorf("alya: CG did not converge in %d iterations", maxIter)
}
