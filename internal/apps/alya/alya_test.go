package alya

import (
	"math"
	"testing"

	"clustereval/internal/apps/scaling"
	"clustereval/internal/machine"
)

// --- Real FEM proxy ---

func TestFEMManufacturedSolution(t *testing.T) {
	// -∆u = 2π² sin(πx) sin(πy) has solution u = sin(πx) sin(πy) with
	// homogeneous Dirichlet boundary.
	mesh, err := NewMesh(24)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x, y float64) float64 {
		return 2 * math.Pi * math.Pi * math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
	}
	zero := func(x, y float64) float64 { return 0 }
	sys := Assemble(mesh, f, zero)
	u, iters, err := sys.SolveCG(2000, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if iters <= 0 {
		t.Error("CG reported zero iterations")
	}
	// Max nodal error of P1 on this grid is O(h^2) ~ 4e-3.
	maxErr := 0.0
	for i, v := range mesh.Verts {
		exact := math.Sin(math.Pi*v[0]) * math.Sin(math.Pi*v[1])
		if e := math.Abs(u[i] - exact); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 6e-3 {
		t.Errorf("max nodal error = %v, want O(h^2) ~ 4e-3", maxErr)
	}
}

func TestFEMConvergenceOrder(t *testing.T) {
	// Halving h must cut the error by ~4 (second order).
	errAt := func(n int) float64 {
		mesh, _ := NewMesh(n)
		f := func(x, y float64) float64 {
			return 2 * math.Pi * math.Pi * math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
		}
		sys := Assemble(mesh, f, func(x, y float64) float64 { return 0 })
		u, _, err := sys.SolveCG(5000, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		max := 0.0
		for i, v := range mesh.Verts {
			exact := math.Sin(math.Pi*v[0]) * math.Sin(math.Pi*v[1])
			if e := math.Abs(u[i] - exact); e > max {
				max = e
			}
		}
		return max
	}
	e1, e2 := errAt(8), errAt(16)
	order := math.Log2(e1 / e2)
	if order < 1.6 || order > 2.5 {
		t.Errorf("convergence order = %.2f, want ~2", order)
	}
}

func TestFEMDirichletBoundary(t *testing.T) {
	// With f=0 and boundary g=5, the solution is constant 5.
	mesh, _ := NewMesh(10)
	sys := Assemble(mesh, func(x, y float64) float64 { return 0 },
		func(x, y float64) float64 { return 5 })
	u, _, err := sys.SolveCG(2000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range u {
		if math.Abs(v-5) > 1e-6 {
			t.Fatalf("u[%d] = %v, want 5 (harmonic with constant boundary)", i, v)
		}
	}
}

func TestStiffnessSymmetric(t *testing.T) {
	mesh, _ := NewMesh(6)
	sys := Assemble(mesh, func(x, y float64) float64 { return 1 },
		func(x, y float64) float64 { return 0 })
	for i, row := range sys.A.Rows {
		for j, v := range row {
			if math.Abs(v-sys.A.Rows[j][i]) > 1e-12 {
				t.Fatalf("stiffness not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestMeshErrors(t *testing.T) {
	if _, err := NewMesh(0); err == nil {
		t.Error("zero mesh accepted")
	}
	mesh, _ := NewMesh(4)
	if len(mesh.Tris) != 32 {
		t.Errorf("4x4 mesh has %d triangles, want 32", len(mesh.Tris))
	}
	sys := Assemble(mesh, func(x, y float64) float64 { return 1 },
		func(x, y float64) float64 { return 0 })
	if _, _, err := sys.SolveCG(0, 1e-6); err == nil {
		t.Error("zero maxIter accepted")
	}
}

// --- Paper-scale model ---

func models(t *testing.T) (*Model, *Model) {
	t.Helper()
	ma, err := NewModel(machine.CTEArm(), TestCaseB())
	if err != nil {
		t.Fatal(err)
	}
	mm, err := NewModel(machine.MareNostrum4(), TestCaseB())
	if err != nil {
		t.Fatal(err)
	}
	return ma, mm
}

func TestMemoryFloor(t *testing.T) {
	ma, mm := models(t)
	// Paper: "the input set requires at least 12 A64FX nodes".
	if got := ma.MinNodes(); got != 12 {
		t.Errorf("CTE-Arm memory floor = %d nodes, paper: 12", got)
	}
	// MN4 has 96 GB/node, floor is 4 nodes — so 1 node is NP there too
	// (Table IV marks Alya NP at 1 node).
	if got := mm.MinNodes(); got <= 1 || got > 8 {
		t.Errorf("MN4 memory floor = %d nodes", got)
	}
	if _, _, _, err := ma.StepTimes(11); err == nil {
		t.Error("run below the memory floor accepted")
	}
	if _, _, _, err := ma.StepTimes(500); err == nil {
		t.Error("run beyond cluster size accepted")
	}
}

func TestFig8TotalSlowdown(t *testing.T) {
	// Paper: between 12 and 16 nodes, CTE-Arm is consistently 3.4x slower.
	cte, ref, err := Figure8(machine.CTEArm(), machine.MareNostrum4())
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{12, 14, 16} {
		s, err := scaling.Slowdown(cte, ref, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s-3.4) > 0.25 {
			t.Errorf("nodes=%d: slowdown %.2f, paper 3.4", nodes, s)
		}
	}
}

func TestFig8Crossover44(t *testing.T) {
	// Paper: 44 A64FX nodes match 12 MareNostrum 4 nodes.
	cte, ref, err := Figure8(machine.CTEArm(), machine.MareNostrum4())
	if err != nil {
		t.Fatal(err)
	}
	target, _ := ref.TimeAt(12)
	if got := scaling.MatchingNodes(cte, target); got != 44 {
		t.Errorf("matching node count = %d, paper: 44", got)
	}
}

func TestFig9AssemblyAnchors(t *testing.T) {
	cte, ref, err := Figure9(machine.CTEArm(), machine.MareNostrum4())
	if err != nil {
		t.Fatal(err)
	}
	// 12 MN4 nodes are 4.96x faster than 12 CTE nodes in Assembly.
	s, err := scaling.Slowdown(cte, ref, 12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-4.96) > 0.25 {
		t.Errorf("assembly slowdown at 12 nodes = %.2f, paper 4.96", s)
	}
	// It takes at least 62 CTE nodes to match 12 MN4 nodes.
	target, _ := ref.TimeAt(12)
	if got := scaling.MatchingNodes(cte, target); got != 62 {
		t.Errorf("assembly crossover = %d nodes, paper: 62", got)
	}
}

func TestFig10SolverAnchors(t *testing.T) {
	cte, ref, err := Figure10(machine.CTEArm(), machine.MareNostrum4())
	if err != nil {
		t.Fatal(err)
	}
	// Solver gap is much smaller: 1.79x at 12 nodes.
	s, err := scaling.Slowdown(cte, ref, 12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1.79) > 0.15 {
		t.Errorf("solver slowdown at 12 nodes = %.2f, paper 1.79", s)
	}
	// 22 CTE nodes match 12 MN4 nodes.
	target, _ := ref.TimeAt(12)
	if got := scaling.MatchingNodes(cte, target); got != 22 {
		t.Errorf("solver crossover = %d nodes, paper: 22", got)
	}
}

func TestSolverMemoryBoundObservation(t *testing.T) {
	// The paper: the Solver benefits from HBM (more memory-bound), hence
	// the smaller gap. Verify the model mechanism: CTE's solver memory
	// time is far below MN4's.
	ma, mm := models(t)
	_, solA, _, err := ma.StepTimes(12)
	if err != nil {
		t.Fatal(err)
	}
	_, solM, _, err := mm.StepTimes(12)
	if err != nil {
		t.Fatal(err)
	}
	asmA, _, _, _ := ma.StepTimes(12)
	asmM, _, _, _ := mm.StepTimes(12)
	gapAsm := float64(asmA) / float64(asmM)
	gapSol := float64(solA) / float64(solM)
	if gapSol >= gapAsm {
		t.Errorf("solver gap %.2f should be below assembly gap %.2f", gapSol, gapAsm)
	}
}

func TestTableIVAlyaRow(t *testing.T) {
	// Table IV row Alya: NP at 1, then 0.30, 0.31, 0.37 (paper's 64-node
	// value drifts up; the model stays near 0.30 — see EXPERIMENTS.md).
	ma, mm := models(t)
	for _, c := range []struct {
		nodes int
		want  float64
		tol   float64
	}{
		{16, 0.30, 0.03},
		{32, 0.31, 0.03},
		{64, 0.37, 0.08},
	} {
		_, _, tA, err := ma.StepTimes(c.nodes)
		if err != nil {
			t.Fatal(err)
		}
		_, _, tM, err := mm.StepTimes(c.nodes)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(tM) / float64(tA)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("nodes=%d: speedup %.3f, paper %.2f", c.nodes, got, c.want)
		}
	}
}

func TestScalingMonotone(t *testing.T) {
	ma, _ := models(t)
	prev := math.Inf(1)
	for _, n := range CTESweep() {
		_, _, total, err := ma.StepTimes(n)
		if err != nil {
			t.Fatal(err)
		}
		if float64(total) >= prev {
			t.Errorf("time not decreasing at %d nodes", n)
		}
		prev = float64(total)
	}
}

func TestNewModelRejectsUnknownMachine(t *testing.T) {
	m := machine.CTEArm()
	m.Name = "Unknown"
	m.CPUName = "POWER9"
	m.Arch = "POWER"
	if _, err := NewModel(m, TestCaseB()); err == nil {
		t.Error("machine with unknown silicon accepted")
	}
	// A renamed A64FX system, by contrast, inherits the CTE-Arm build.
	a := machine.CTEArm()
	a.Name = "Other A64FX"
	if _, err := NewModel(a, TestCaseB()); err != nil {
		t.Errorf("renamed A64FX machine rejected: %v", err)
	}
}

func TestPow23(t *testing.T) {
	for _, x := range []float64{1, 8, 1000, 229000} {
		want := math.Pow(x, 2.0/3.0)
		if got := pow23(x); math.Abs(got-want) > 1e-6*want {
			t.Errorf("pow23(%v) = %v, want %v", x, got, want)
		}
	}
	if pow23(0) != 0 || pow23(-4) != 0 {
		t.Error("pow23 edge cases")
	}
}
