package interconnect

import (
	"math"
	"testing"
	"testing/quick"

	"clustereval/internal/machine"
	"clustereval/internal/units"
)

func tofu(t *testing.T, nodes int) *Fabric {
	t.Helper()
	f, err := NewTofuD(machine.CTEArm(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func opa(t *testing.T, nodes int) *Fabric {
	t.Helper()
	f, err := NewOmniPath(machine.MareNostrum4(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestLatencyGrowsWithHops(t *testing.T) {
	f := tofu(t, 192)
	// Find a 1-hop and a far pair.
	near, far := -1, -1
	for j := 1; j < 192; j++ {
		h := f.Topo.Hops(0, j)
		if h == 1 && near < 0 {
			near = j
		}
		if h == f.Topo.Diameter() && far < 0 {
			far = j
		}
	}
	if near < 0 || far < 0 {
		t.Fatal("could not find near/far pairs")
	}
	if !(f.Latency(0, far) > f.Latency(0, near)) {
		t.Errorf("latency near=%v far=%v", f.Latency(0, near), f.Latency(0, far))
	}
	if f.Latency(3, 3) != f.IntraNodeLatency {
		t.Error("self latency should be intra-node")
	}
}

func TestMessageTimePositiveAndMonotoneInSize(t *testing.T) {
	f := tofu(t, 24)
	// Average over trials to wash out jitter; check monotonicity in size.
	avg := func(size units.Bytes) float64 {
		var total units.Seconds
		const n = 64
		for i := 0; i < n; i++ {
			total += f.MessageTime(0, 5, size, uint64(i))
		}
		return float64(total) / n
	}
	prev := 0.0
	for _, size := range []units.Bytes{1, 64, 1024, 32 * 1024, 1 << 20, 8 << 20} {
		cur := avg(size)
		if cur <= 0 {
			t.Fatalf("non-positive message time for %v", size)
		}
		if cur < prev {
			t.Errorf("mean time decreased from %v at size %v", prev, size)
		}
		prev = cur
	}
}

func TestBandwidthApproachesLinkPeak(t *testing.T) {
	// Large messages approach link peak, but per-pair persistent
	// congestion keeps some pairs well below it (Fig. 5's wide >1 MB
	// band). The best pair must get close; no pair may exceed the peak.
	f := tofu(t, 24)
	peak := float64(f.Net.LinkPeak)
	best := 0.0
	for dst := 1; dst < 24; dst++ {
		bw := float64(f.SustainedBandwidth(0, dst, units.Bytes(16*units.MiB), 32))
		if bw > peak*1.0001 {
			t.Errorf("pair 0->%d exceeds link peak: %v", dst, units.BytesPerSecond(bw))
		}
		if _, degraded := f.DegradedRecv[dst]; !degraded && bw < 0.3*peak {
			t.Errorf("pair 0->%d implausibly slow: %v", dst, units.BytesPerSecond(bw))
		}
		if bw > best {
			best = bw
		}
	}
	if best < 0.8*peak {
		t.Errorf("best large-message bandwidth = %v, want near peak %v",
			units.BytesPerSecond(best), f.Net.LinkPeak)
	}
}

func TestSmallMessageLatencyBound(t *testing.T) {
	f := tofu(t, 192)
	// 256 B across the torus: bandwidth must be far below peak and depend
	// on distance (this is what draws Fig. 4's diagonals).
	var bwNear, bwFar units.BytesPerSecond
	for j := 1; j < 192; j++ {
		h := f.Topo.Hops(0, j)
		if h == 1 && bwNear == 0 {
			bwNear = f.SustainedBandwidth(0, j, 256, 100)
		}
		if h == f.Topo.Diameter() && bwFar == 0 {
			bwFar = f.SustainedBandwidth(0, j, 256, 100)
		}
	}
	if bwNear < bwFar {
		t.Errorf("near pair slower than far pair: %v vs %v", bwNear, bwFar)
	}
	if bwNear > 0.2*f.Net.LinkPeak {
		t.Errorf("256B bandwidth %v suspiciously close to peak", bwNear)
	}
}

func TestDegradedReceiver(t *testing.T) {
	f := tofu(t, 192)
	const bad = 23 // arms0b1-11c
	size := units.Bytes(4 * units.MiB)
	asRecv := f.SustainedBandwidth(0, bad, size, 16)
	asSend := f.SustainedBandwidth(bad, 0, size, 16)
	if float64(asRecv) > 0.4*float64(asSend) {
		t.Errorf("degraded node: recv %v should be far below send %v", asRecv, asSend)
	}
	// Sender side is unaffected: compare against a healthy pair.
	healthy := f.SustainedBandwidth(0, 24, size, 16)
	if math.Abs(float64(asSend)-float64(healthy))/float64(healthy) > 0.25 {
		t.Errorf("degraded node as sender %v differs too much from healthy %v", asSend, healthy)
	}
}

func TestSmallClusterHasNoDegradedNode(t *testing.T) {
	f := tofu(t, 12)
	if len(f.DegradedRecv) != 0 {
		t.Error("12-node fabric should not include node 23 degradation")
	}
}

func TestBimodalMidSizes(t *testing.T) {
	f := tofu(t, 192)
	// At 16 KiB, different (pair, trial) draws should fall into two bands.
	size := units.Bytes(16 * units.KiB)
	fast, slow := 0, 0
	for src := 0; src < 24; src++ {
		for dst := 24; dst < 48; dst++ {
			bw := float64(f.Bandwidth(src, dst, size, 0))
			if bw > 0.75*float64(f.Net.LinkPeak)*float64(size)/float64(size) {
				// classification below via ratio to median instead
				_ = bw
			}
		}
	}
	// Classify by comparing against the healthy α-β expectation.
	for src := 0; src < 48; src++ {
		for trial := uint64(0); trial < 4; trial++ {
			dst := (src + 53) % 192
			expect := float64(size) / (float64(f.Latency(src, dst)) + float64(size)/float64(f.Net.LinkPeak))
			got := float64(f.Bandwidth(src, dst, size, trial))
			if got > 0.8*expect {
				fast++
			} else {
				slow++
			}
		}
	}
	if fast == 0 || slow == 0 {
		t.Errorf("mid-size distribution not bimodal: fast=%d slow=%d", fast, slow)
	}
	frac := float64(slow) / float64(fast+slow)
	if frac < 0.15 || frac > 0.60 {
		t.Errorf("slow-path fraction = %.2f, want near %.2f", frac, f.SlowPathProb)
	}
}

func TestLargeMessagesMoreVariable(t *testing.T) {
	f := tofu(t, 24)
	// Across repeated transfers of one pair (transient noise)...
	cvTrials := func(size units.Bytes) float64 {
		var xs []float64
		for i := uint64(0); i < 200; i++ {
			xs = append(xs, float64(f.MessageTime(0, 7, size, i)))
		}
		return cv(xs)
	}
	small := cvTrials(256)
	large := cvTrials(units.Bytes(4 * units.MiB))
	if large < 3*small {
		t.Errorf("per-trial variability: small cv=%v, large cv=%v", small, large)
	}
	// ...and across pairs (persistent congestion), which is what Fig. 5
	// actually plots, the large-message spread must be much wider still.
	cvPairs := func(size units.Bytes) float64 {
		var xs []float64
		for dst := 1; dst < 24; dst++ {
			xs = append(xs, float64(f.SustainedBandwidth(0, dst, size, 16)))
		}
		return cv(xs)
	}
	if cvPairs(units.Bytes(4*units.MiB)) < 2*large {
		t.Error("persistent per-pair congestion should dominate transient noise")
	}
}

func cv(xs []float64) float64 {
	mean, ss := 0.0, 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return math.Sqrt(ss/float64(len(xs)-1)) / mean
}

func TestRendezvousStep(t *testing.T) {
	f := tofu(t, 24)
	f.NoiseSmall, f.NoiseLarge = 0, 0 // make the protocol step visible
	below := f.MessageTime(0, 5, f.EagerThreshold, 0)
	above := f.MessageTime(0, 5, f.EagerThreshold+1, 1)
	extra := float64(above - below)
	if extra < 1.5*float64(f.Latency(0, 5)) {
		t.Errorf("rendezvous switch should add ~2 latencies, added %v", units.Seconds(extra))
	}
}

func TestDeterminism(t *testing.T) {
	f1 := tofu(t, 48)
	f2 := tofu(t, 48)
	for trial := uint64(0); trial < 10; trial++ {
		a := f1.MessageTime(1, 40, 12345, trial)
		b := f2.MessageTime(1, 40, 12345, trial)
		if a != b {
			t.Fatalf("non-deterministic message time at trial %d", trial)
		}
	}
}

func TestIntraNode(t *testing.T) {
	f := opa(t, 96)
	inter := f.MessageTime(0, 1, units.Bytes(1*units.MiB), 0)
	intra := f.MessageTime(0, 0, units.Bytes(1*units.MiB), 0)
	if intra >= inter {
		t.Errorf("intra-node %v should beat inter-node %v", intra, inter)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	f := opa(t, 96)
	defer func() {
		if recover() == nil {
			t.Error("negative size accepted")
		}
	}()
	f.MessageTime(0, 1, -1, 0)
}

func TestSustainedBandwidthPanicsOnZeroIters(t *testing.T) {
	f := opa(t, 96)
	defer func() {
		if recover() == nil {
			t.Error("zero iterations accepted")
		}
	}()
	f.SustainedBandwidth(0, 1, 100, 0)
}

// Property: message time is always at least the latency floor plus the ideal
// transfer time scaled by the worst-case noise clamp.
func TestMessageTimeLowerBoundProperty(t *testing.T) {
	f := tofu(t, 48)
	q := func(srcRaw, dstRaw uint8, sizeRaw uint32, trial uint16) bool {
		src := int(srcRaw) % 48
		dst := int(dstRaw) % 48
		size := units.Bytes(sizeRaw % (1 << 22))
		got := float64(f.MessageTime(src, dst, size, uint64(trial)))
		var floor float64
		if src == dst {
			floor = float64(f.IntraNodeLatency)
		} else {
			floor = float64(f.Latency(src, dst))
		}
		// Noise is one-sided: time never drops below the ideal floor.
		return got >= floor-1e-15
	}
	if err := quick.Check(q, nil); err != nil {
		t.Error(err)
	}
}

func TestOmniPathUniformity(t *testing.T) {
	f := opa(t, 96)
	// Fat-tree distances are uniform across leaves: the spread of 256 B
	// bandwidth across pairs must be far smaller than on the torus.
	var min, max units.BytesPerSecond
	for dst := 24; dst < 96; dst += 7 {
		bw := f.SustainedBandwidth(0, dst, 256, 50)
		if min == 0 || bw < min {
			min = bw
		}
		if bw > max {
			max = bw
		}
	}
	if float64(max)/float64(min) > 1.15 {
		t.Errorf("cross-leaf OPA bandwidth spread too wide: %v..%v", min, max)
	}
}
