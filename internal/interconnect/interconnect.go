// Package interconnect turns a topology plus the link parameters of Table I
// into a per-message cost model. The model is the classic α-β (latency +
// size/bandwidth) form, extended with the behaviours the paper's network
// experiments surface:
//
//   - per-hop latency, so hop distance on the TofuD torus produces the
//     diagonal banding of Fig. 4;
//   - an eager/rendezvous protocol switch plus a buffer-placement lottery
//     for mid-size messages, producing the bimodal bandwidth distribution
//     of Fig. 5 (1 kB – 256 kB);
//   - contention jitter growing with message size, producing the high
//     variability above 1 MB;
//   - injected receiver-side degradation for the faulty node arms0b1-11c.
package interconnect

import (
	"fmt"

	"clustereval/internal/faultsim"
	"clustereval/internal/machine"
	"clustereval/internal/topology"
	"clustereval/internal/units"
	"clustereval/internal/xrand"
)

// Fabric is a configured interconnect cost model.
type Fabric struct {
	Topo topology.Topology
	Net  machine.Network

	// EagerThreshold is the message size above which the rendezvous
	// protocol (an extra control round trip) is used.
	EagerThreshold units.Bytes

	// MidSizeLow..MidSizeHigh bound the region where the transport's buffer
	// lottery makes bandwidth bimodal (Fig. 5).
	MidSizeLow, MidSizeHigh units.Bytes
	// SlowPathFactor is the bandwidth retained by the slow lottery outcome.
	SlowPathFactor float64
	// SlowPathProb is the probability of drawing the slow path.
	SlowPathProb float64

	// NoiseSmall and NoiseLarge are the relative jitter amplitudes for
	// small and >1 MiB messages; between them the amplitude interpolates.
	NoiseSmall, NoiseLarge float64

	// DegradedRecv maps node index to the bandwidth factor it achieves as a
	// receiver (1.0 = healthy). The paper's arms0b1-11c keeps full sender
	// bandwidth but very low receiver bandwidth.
	DegradedRecv map[int]float64

	// IntraNode models communication between ranks on the same node.
	IntraNodeBW      units.BytesPerSecond
	IntraNodeLatency units.Seconds

	// Seed anchors all deterministic noise.
	Seed uint64

	// Faults, when non-nil, is the injected fault scenario inherited from
	// the machine descriptor: per-link bandwidth degradation and extra
	// latency apply here, and mpisim worlds built on this fabric pick up
	// the per-node compute slowdowns and hard failures.
	Faults *faultsim.Model
}

// New builds the fabric matching the machine's interconnect kind — the
// TofuD torus for CTE-Arm, the OmniPath fat tree otherwise. It is the
// constructor the application models and the evaluation service use, so a
// machine descriptor fully determines its network model.
func New(m machine.Machine, nodes int) (*Fabric, error) {
	switch m.Network.Kind {
	case machine.TofuD:
		return NewTofuD(m, nodes)
	case machine.Infiniband:
		return NewInfiniband(m, nodes)
	default:
		return NewOmniPath(m, nodes)
	}
}

// fabricSeed picks the noise seed for a fabric: the machine's requested
// Network.Seed when set (CLI -seed flags and service job specs plumb it
// there), otherwise the built-in default that reproduces the paper.
func fabricSeed(m machine.Machine, def uint64) uint64 {
	if m.Network.Seed != 0 {
		return m.Network.Seed
	}
	return def
}

// NewTofuD builds the CTE-Arm fabric for the given node count, including the
// degraded receiver arms0b1-11c (node 23) when the cluster is large enough.
func NewTofuD(m machine.Machine, nodes int) (*Fabric, error) {
	topo, err := tofuTopology(m, nodes)
	if err != nil {
		return nil, err
	}
	f := &Fabric{
		Topo:             topo,
		Net:              m.Network,
		EagerThreshold:   units.Bytes(32 * units.KiB),
		MidSizeLow:       units.Bytes(1 * units.KiB),
		MidSizeHigh:      units.Bytes(256 * units.KiB),
		SlowPathFactor:   0.40,
		SlowPathProb:     0.35,
		NoiseSmall:       0.01,
		NoiseLarge:       0.50,
		DegradedRecv:     map[int]float64{},
		IntraNodeBW:      units.BytesPerSecond(20 * units.Giga),
		IntraNodeLatency: units.Seconds(0.25e-6),
		Seed:             fabricSeed(m, 0x7f0a64f),
		Faults:           m.Faults,
	}
	if nodes > 23 {
		f.DegradedRecv[23] = 0.22 // arms0b1-11c
	}
	return f, nil
}

// tofuTopology picks the torus shape for a TofuD fabric: the machine's
// pinned Topology.Dims when the fabric spans the whole machine (Fugaku's
// production 6-D shape), else the balanced shape derived from the node
// count — what every sub-allocation and the original presets always got.
func tofuTopology(m machine.Machine, nodes int) (topology.Topology, error) {
	if dims := m.Topology.Dims; len(dims) > 0 {
		product := 1
		for _, d := range dims {
			product *= d
		}
		if product == nodes {
			wrap := m.Topology.Wrap
			if len(wrap) == 0 {
				wrap = make([]bool, len(dims))
			}
			return topology.NewTorus("TofuD", dims, wrap)
		}
	}
	return topology.NewTofuD(nodes)
}

// fatTreeLeaf is the nodes-per-edge-switch of a fat-tree fabric: the
// machine's pinned leaf size when set, else the MareNostrum 4 default.
func fatTreeLeaf(m machine.Machine) int {
	if m.Topology.LeafSize > 0 {
		return m.Topology.LeafSize
	}
	return 24
}

// NewOmniPath builds the MareNostrum 4 fabric (two-level fat tree, 24 nodes
// per leaf switch).
func NewOmniPath(m machine.Machine, nodes int) (*Fabric, error) {
	topo, err := topology.NewFatTree(nodes, fatTreeLeaf(m))
	if err != nil {
		return nil, err
	}
	return &Fabric{
		Topo:             topo,
		Net:              m.Network,
		EagerThreshold:   units.Bytes(16 * units.KiB),
		MidSizeLow:       units.Bytes(1 * units.KiB),
		MidSizeHigh:      units.Bytes(128 * units.KiB),
		SlowPathFactor:   0.75,
		SlowPathProb:     0.20,
		NoiseSmall:       0.01,
		NoiseLarge:       0.25,
		DegradedRecv:     map[int]float64{},
		IntraNodeBW:      units.BytesPerSecond(24 * units.Giga),
		IntraNodeLatency: units.Seconds(0.30e-6),
		Seed:             fabricSeed(m, 0x5ce8160),
		Faults:           m.Faults,
	}, nil
}

// NewInfiniband builds an EDR Infiniband fat-tree fabric (the Dibona
// ThunderX2 cluster). EDR's hardware rendezvous pipeline has a milder
// mid-size buffer lottery than OmniPath's PSM2, and standard MPI stacks
// (OpenMPI/UCX) leave a slightly larger share of the link peak on the
// table for mid-size messages.
func NewInfiniband(m machine.Machine, nodes int) (*Fabric, error) {
	topo, err := topology.NewFatTree(nodes, fatTreeLeaf(m))
	if err != nil {
		return nil, err
	}
	return &Fabric{
		Topo:             topo,
		Net:              m.Network,
		EagerThreshold:   units.Bytes(16 * units.KiB),
		MidSizeLow:       units.Bytes(1 * units.KiB),
		MidSizeHigh:      units.Bytes(64 * units.KiB),
		SlowPathFactor:   0.70,
		SlowPathProb:     0.15,
		NoiseSmall:       0.01,
		NoiseLarge:       0.20,
		DegradedRecv:     map[int]float64{},
		IntraNodeBW:      units.BytesPerSecond(22 * units.Giga),
		IntraNodeLatency: units.Seconds(0.30e-6),
		Seed:             fabricSeed(m, 0x1b0d1ba),
		Faults:           m.Faults,
	}, nil
}

// Latency returns the end-to-end zero-byte latency between two nodes,
// including any injected per-link extra latency.
func (f *Fabric) Latency(src, dst int) units.Seconds {
	if src == dst {
		return f.IntraNodeLatency
	}
	hops := f.Topo.Hops(src, dst)
	lat := f.Net.BaseLatency + units.Seconds(float64(hops))*f.Net.PerHopLatency
	if le, ok := f.Faults.Link(src, dst); ok {
		lat += le.ExtraLatency
	}
	return lat
}

// MessageTime returns the one-way time for a message of size bytes from
// node src to node dst. trial distinguishes repetitions of the same
// transfer so noise decorrelates across iterations while remaining
// deterministic. Negative sizes panic.
func (f *Fabric) MessageTime(src, dst int, size units.Bytes, trial uint64) units.Seconds {
	if size < 0 {
		panic(fmt.Sprintf("interconnect: negative message size %v", float64(size)))
	}
	if src == dst {
		return f.IntraNodeLatency + units.TimeFor(size, f.IntraNodeBW)
	}

	lat := f.Latency(src, dst) // includes injected per-link extra latency
	bw := float64(f.Net.LinkPeak)
	if le, ok := f.Faults.Link(src, dst); ok && le.BandwidthFactor > 0 {
		bw *= le.BandwidthFactor
	}

	// Buffer lottery for mid-size messages: the slow outcome pays an
	// extra internal copy (one more latency) and reduced bandwidth,
	// which is what splits Fig. 5 into two modes between 1 kB and 256 kB.
	stream := xrand.MixN(f.Seed, uint64(src), uint64(dst), uint64(size), trial)
	extraLat := units.Seconds(0)
	if size >= f.MidSizeLow && size <= f.MidSizeHigh {
		if p := float64(stream%1000) / 1000.0; p < f.SlowPathProb {
			bw *= f.SlowPathFactor
			extraLat = lat
		}
	}

	t := lat + extraLat + units.TimeFor(size, units.BytesPerSecond(bw))

	// Rendezvous adds a control round trip before the payload moves.
	if size > f.EagerThreshold {
		t += 2 * lat
	}

	// Receiver-side degradation (arms0b1-11c): the sick node processes
	// every incoming message slowly — latency and transfer alike — while
	// its sender path stays healthy, exactly the asymmetry Fig. 4 shows.
	if fac, ok := f.DegradedRecv[dst]; ok && fac > 0 {
		t = t / units.Seconds(fac)
	}

	// Contention jitter grows with size and only ever slows a message.
	// Most of it is *persistent* per (pair, size): a congested route stays
	// congested for the whole measurement loop, so repeating the transfer
	// does not average it away (this is what keeps the >1 MB region of
	// Fig. 5 wide). A smaller transient component varies per iteration.
	eps := f.noiseAmplitude(size)
	persistent := xrand.New(xrand.MixN(f.Seed, uint64(src), uint64(dst), uint64(size)) ^ 0xc0de)
	transient := xrand.New(stream ^ 0xfeed)
	j := persistent.SlowJitter(0.7*eps) * transient.SlowJitter(0.3*eps)
	return t * units.Seconds(j)
}

// noiseAmplitude interpolates the jitter amplitude between the small- and
// large-message regimes on a log-ish ramp anchored at 64 KiB and 1 MiB.
func (f *Fabric) noiseAmplitude(size units.Bytes) float64 {
	const lo, hi = 64 * 1024, 1024 * 1024
	s := float64(size)
	switch {
	case s <= lo:
		return f.NoiseSmall
	case s >= hi:
		return f.NoiseLarge
	default:
		frac := (s - lo) / (hi - lo)
		return f.NoiseSmall + frac*(f.NoiseLarge-f.NoiseSmall)
	}
}

// Bandwidth returns the effective bandwidth observed for one message,
// size / MessageTime.
func (f *Fabric) Bandwidth(src, dst int, size units.Bytes, trial uint64) units.BytesPerSecond {
	t := f.MessageTime(src, dst, size, trial)
	if t <= 0 {
		return 0
	}
	return units.BytesPerSecond(float64(size) / float64(t))
}

// SustainedBandwidth averages the effective bandwidth over n back-to-back
// messages, mirroring the paper's OSU-style loop (N iterations between two
// timestamps).
func (f *Fabric) SustainedBandwidth(src, dst int, size units.Bytes, n int) units.BytesPerSecond {
	if n <= 0 {
		panic("interconnect: need at least one iteration")
	}
	var total units.Seconds
	for i := 0; i < n; i++ {
		total += f.MessageTime(src, dst, size, uint64(i))
	}
	return units.BytesPerSecond(float64(size) * float64(n) / float64(total))
}
