package interconnect

import (
	"testing"

	"clustereval/internal/faultsim"
	"clustereval/internal/machine"
	"clustereval/internal/units"
)

func compiled(t *testing.T, spec *faultsim.Spec, nodes int) *faultsim.Model {
	t.Helper()
	m, err := spec.Compile(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFabricInheritsMachineFaults(t *testing.T) {
	m := machine.CTEArm()
	m.Faults = compiled(t, &faultsim.Spec{
		Links: []faultsim.LinkFault{{Src: 0, Dst: 1, BandwidthFactor: 0.5}},
	}, 12)
	tofu, err := NewTofuD(m, 12)
	if err != nil {
		t.Fatal(err)
	}
	if tofu.Faults != m.Faults {
		t.Error("NewTofuD dropped the machine's fault model")
	}

	mn4 := machine.MareNostrum4()
	mn4.Faults = m.Faults
	opa, err := NewOmniPath(mn4, 48)
	if err != nil {
		t.Fatal(err)
	}
	if opa.Faults != mn4.Faults {
		t.Error("NewOmniPath dropped the machine's fault model")
	}
}

// TestNilFaultModelBitIdentical anchors the subsystem's core contract: a
// fabric carrying a nil fault model prices every message bit-for-bit like
// one that has never heard of fault injection.
func TestNilFaultModelBitIdentical(t *testing.T) {
	base, err := NewTofuD(machine.CTEArm(), 48)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.CTEArm()
	m.Faults = nil
	faulted, err := NewTofuD(m, 48)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []units.Bytes{1, 1 << 10, 64 << 10, 1 << 20} {
		for trial := uint64(0); trial < 3; trial++ {
			for src := 0; src < 8; src++ {
				for dst := 0; dst < 8; dst++ {
					a := base.MessageTime(src, dst, size, trial)
					b := faulted.MessageTime(src, dst, size, trial)
					if a != b {
						t.Fatalf("size %v trial %d %d->%d: %v != %v", size, trial, src, dst, a, b)
					}
				}
			}
		}
	}
}

func TestLinkFaultBandwidth(t *testing.T) {
	m := machine.CTEArm()
	m.Faults = compiled(t, &faultsim.Spec{
		Links: []faultsim.LinkFault{{Src: 0, Dst: 1, BandwidthFactor: 0.1}},
	}, 12)
	f, err := NewTofuD(m, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Quiet the stochastic effects so the comparison is exact.
	f.SlowPathProb = 0
	f.NoiseSmall = 0
	f.NoiseLarge = 0

	clean, err := NewTofuD(machine.CTEArm(), 12)
	if err != nil {
		t.Fatal(err)
	}
	clean.SlowPathProb = 0
	clean.NoiseSmall = 0
	clean.NoiseLarge = 0

	const size = units.Bytes(4 << 20)
	slow := f.MessageTime(0, 1, size, 0)
	fast := clean.MessageTime(0, 1, size, 0)
	if float64(slow) < 5*float64(fast) {
		t.Errorf("10x degraded link: %v vs clean %v, want clearly slower", slow, fast)
	}
	// The reverse direction is untouched.
	if got, want := f.MessageTime(1, 0, size, 0), clean.MessageTime(1, 0, size, 0); got != want {
		t.Errorf("reverse direction changed: %v != %v", got, want)
	}
}

func TestLinkFaultExtraLatency(t *testing.T) {
	const extra = 1e-3
	m := machine.CTEArm()
	m.Faults = compiled(t, &faultsim.Spec{
		Links: []faultsim.LinkFault{{Src: 2, Dst: 5, ExtraLatencySeconds: extra}},
	}, 12)
	f, err := NewTofuD(m, 12)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := NewTofuD(machine.CTEArm(), 12)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Latency(2, 5) - clean.Latency(2, 5)
	if got != units.Seconds(extra) {
		t.Errorf("extra latency = %v, want %v", got, units.Seconds(extra))
	}
	if f.Latency(5, 2) != clean.Latency(5, 2) {
		t.Error("reverse direction latency changed")
	}
	// Intra-node latency never consults link faults.
	if f.Latency(2, 2) != clean.Latency(2, 2) {
		t.Error("intra-node latency changed")
	}
}
