// Package report renders evaluation results for the terminal and for
// post-processing: aligned text tables, logarithmic ASCII scatter plots
// (the scalability figures), ASCII heatmaps (Fig. 4) and CSV output.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row; short rows are padded.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the aligned table to w.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, wd := range widths {
			total += wd + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (naive quoting: cells
// containing commas or quotes are double-quoted).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is one named curve of a plot.
type Series struct {
	Name string
	X, Y []float64
}

// Plot is a log-log ASCII scatter plot, the shape of the paper's
// scalability figures.
type Plot struct {
	Title, XLabel, YLabel string
	Width, Height         int
	LogX, LogY            bool
	Series                []Series
}

// markers cycles through per-series point glyphs.
var markers = []byte{'o', 'x', '+', '*', '#', '@'}

// Render draws the plot to w. It fails on empty or degenerate data.
func (p *Plot) Render(w io.Writer) error {
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	var xs, ys []float64
	for _, s := range p.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("report: series %q has mismatched lengths", s.Name)
		}
		xs = append(xs, s.X...)
		ys = append(ys, s.Y...)
	}
	if len(xs) == 0 {
		return fmt.Errorf("report: nothing to plot")
	}
	tx, err := newAxis(xs, p.LogX)
	if err != nil {
		return fmt.Errorf("report: x axis: %w", err)
	}
	ty, err := newAxis(ys, p.LogY)
	if err != nil {
		return fmt.Errorf("report: y axis: %w", err)
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			cx := int(tx.frac(s.X[i]) * float64(width-1))
			cy := height - 1 - int(ty.frac(s.Y[i])*float64(height-1))
			grid[cy][cx] = m
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	for _, s := range p.Series {
		fmt.Fprintf(&b, "  %c %s\n", markers[indexOf(p.Series, s.Name)%len(markers)], s.Name)
	}
	fmt.Fprintf(&b, "%10.3g +%s\n", ty.max, strings.Repeat("-", width))
	for _, row := range grid {
		fmt.Fprintf(&b, "%10s |%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%10.3g +%s\n", ty.min, strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-10.3g%*s\n", p.YLabel, tx.min, width-10, fmt.Sprintf("%.3g %s", tx.max, p.XLabel))
	_, err = io.WriteString(w, b.String())
	return err
}

func indexOf(series []Series, name string) int {
	for i, s := range series {
		if s.Name == name {
			return i
		}
	}
	return 0
}

// CSV writes the plot's raw data in long form: series,x,y — the format
// external plotting tools ingest directly.
func (p *Plot) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range p.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("report: series %q has mismatched lengths", s.Name)
		}
		for i := range s.X {
			name := s.Name
			if strings.ContainsAny(name, ",\"\n") {
				name = `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
			}
			fmt.Fprintf(&b, "%s,%g,%g\n", name, s.X[i], s.Y[i])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// axis maps data values onto [0, 1], optionally logarithmically.
type axis struct {
	min, max float64
	log      bool
}

func newAxis(vals []float64, logScale bool) (axis, error) {
	a := axis{min: math.Inf(1), max: math.Inf(-1), log: logScale}
	for _, v := range vals {
		if logScale && v <= 0 {
			return axis{}, fmt.Errorf("non-positive value %v on log axis", v)
		}
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	if a.min == a.max {
		// Widen a degenerate range so frac is well defined.
		if a.min == 0 {
			a.max = 1
		} else {
			a.min, a.max = a.min*0.9, a.max*1.1
		}
	}
	return a, nil
}

func (a axis) frac(v float64) float64 {
	lo, hi, x := a.min, a.max, v
	if a.log {
		lo, hi, x = math.Log(lo), math.Log(hi), math.Log(v)
	}
	f := (x - lo) / (hi - lo)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Heatmap renders a 2D matrix with a density character ramp (Fig. 4).
type Heatmap struct {
	Title string
	// Values[row][col]; zero cells render as blanks.
	Values [][]float64
	// Downsample collapses blocks of cells to keep the output terminal-sized.
	Downsample int
}

// CSV writes the heatmap as row,col,value triples (zero cells skipped).
func (h *Heatmap) CSV(w io.Writer) error {
	if len(h.Values) == 0 {
		return fmt.Errorf("report: empty heatmap")
	}
	var b strings.Builder
	b.WriteString("row,col,value\n")
	for r, row := range h.Values {
		for c, v := range row {
			if v == 0 {
				continue
			}
			fmt.Fprintf(&b, "%d,%d,%g\n", r, c, v)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ramp is the density palette from light to dark.
const ramp = " .:-=+*#%@"

// Render writes the heatmap to w.
func (h *Heatmap) Render(w io.Writer) error {
	if len(h.Values) == 0 {
		return fmt.Errorf("report: empty heatmap")
	}
	ds := h.Downsample
	if ds <= 0 {
		ds = 1
	}
	rows := (len(h.Values) + ds - 1) / ds
	cols := (len(h.Values[0]) + ds - 1) / ds

	// Block-average.
	avg := make([][]float64, rows)
	min, max := math.Inf(1), math.Inf(-1)
	for r := 0; r < rows; r++ {
		avg[r] = make([]float64, cols)
		for c := 0; c < cols; c++ {
			sum, cnt := 0.0, 0
			for i := r * ds; i < (r+1)*ds && i < len(h.Values); i++ {
				for j := c * ds; j < (c+1)*ds && j < len(h.Values[i]); j++ {
					if h.Values[i][j] != 0 {
						sum += h.Values[i][j]
						cnt++
					}
				}
			}
			if cnt > 0 {
				avg[r][c] = sum / float64(cnt)
				if avg[r][c] < min {
					min = avg[r][c]
				}
				if avg[r][c] > max {
					max = avg[r][c]
				}
			}
		}
	}
	if min > max {
		return fmt.Errorf("report: heatmap has no nonzero cells")
	}

	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := avg[r][c]
			if v == 0 {
				b.WriteByte(' ')
				continue
			}
			frac := 0.0
			if max > min {
				frac = (v - min) / (max - min)
			}
			idx := int(frac * float64(len(ramp)-1))
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "scale: %s  (low %.3g .. high %.3g)\n", ramp, min, max)
	_, err := io.WriteString(w, b.String())
	return err
}
