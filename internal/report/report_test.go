package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "Demo",
		Headers: []string{"name", "value"},
	}
	tb.AddRow("alpha", "1")
	tb.AddRow("bb", "22", "extra")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Demo", "name", "alpha", "extra", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: "value" and "1" start at the same offset.
	lines := strings.Split(out, "\n")
	hdr, row := lines[1], lines[3]
	if strings.Index(hdr, "value") != strings.Index(row, "1") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow(`with,comma`, `with"quote`)
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"with,comma"`) {
		t.Errorf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"with""quote"`) {
		t.Errorf("quote cell not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("header line wrong: %s", out)
	}
}

func TestPlotRender(t *testing.T) {
	p := &Plot{
		Title: "scaling", XLabel: "nodes", YLabel: "time",
		LogX: true, LogY: true,
		Series: []Series{
			{Name: "CTE-Arm", X: []float64{1, 2, 4, 8}, Y: []float64{100, 52, 27, 14}},
			{Name: "MN4", X: []float64{1, 2, 4, 8}, Y: []float64{30, 16, 8.5, 4.5}},
		},
	}
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "scaling") || !strings.Contains(out, "CTE-Arm") {
		t.Errorf("plot missing labels:\n%s", out)
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Errorf("plot missing point markers:\n%s", out)
	}
}

func TestPlotErrors(t *testing.T) {
	if err := (&Plot{}).Render(&bytes.Buffer{}); err == nil {
		t.Error("empty plot accepted")
	}
	p := &Plot{Series: []Series{{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := p.Render(&bytes.Buffer{}); err == nil {
		t.Error("mismatched series accepted")
	}
	p = &Plot{LogY: true, Series: []Series{{Name: "neg", X: []float64{1}, Y: []float64{-1}}}}
	if err := p.Render(&bytes.Buffer{}); err == nil {
		t.Error("negative value on log axis accepted")
	}
}

func TestPlotDegenerateRange(t *testing.T) {
	p := &Plot{Series: []Series{{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}}}}
	if err := p.Render(&bytes.Buffer{}); err != nil {
		t.Errorf("flat series should render: %v", err)
	}
}

func TestPlotCSV(t *testing.T) {
	p := &Plot{Series: []Series{
		{Name: "a,b", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Name: "plain", X: []float64{3}, Y: []float64{30}},
	}}
	var buf bytes.Buffer
	if err := p.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "series,x,y\n") {
		t.Errorf("header: %s", out)
	}
	if !strings.Contains(out, `"a,b",1,10`) {
		t.Errorf("quoted series missing:\n%s", out)
	}
	if !strings.Contains(out, "plain,3,30") {
		t.Errorf("plain series missing:\n%s", out)
	}
	bad := &Plot{Series: []Series{{Name: "x", X: []float64{1}, Y: nil}}}
	if err := bad.CSV(&buf); err == nil {
		t.Error("mismatched series accepted")
	}
}

func TestHeatmapCSV(t *testing.T) {
	h := &Heatmap{Values: [][]float64{{0, 1.5}, {2, 0}}}
	var buf bytes.Buffer
	if err := h.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "0,1,1.5") || !strings.Contains(out, "1,0,2") {
		t.Errorf("heatmap csv:\n%s", out)
	}
	if strings.Contains(out, "0,0,0") {
		t.Error("zero cells should be skipped")
	}
	if err := (&Heatmap{}).CSV(&buf); err == nil {
		t.Error("empty heatmap accepted")
	}
}

func TestHeatmapRender(t *testing.T) {
	vals := make([][]float64, 8)
	for i := range vals {
		vals[i] = make([]float64, 8)
		for j := range vals[i] {
			if i != j {
				vals[i][j] = float64(i + j)
			}
		}
	}
	h := &Heatmap{Title: "pairs", Values: vals}
	var buf bytes.Buffer
	if err := h.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "pairs") || !strings.Contains(out, "scale:") {
		t.Errorf("heatmap output:\n%s", out)
	}
	// High values render darker than low ones: '@' must appear.
	if !strings.Contains(out, "@") {
		t.Errorf("no dark cells:\n%s", out)
	}
}

func TestHeatmapDownsample(t *testing.T) {
	vals := make([][]float64, 100)
	for i := range vals {
		vals[i] = make([]float64, 100)
		for j := range vals[i] {
			vals[i][j] = 1
		}
	}
	h := &Heatmap{Values: vals, Downsample: 4}
	var buf bytes.Buffer
	if err := h.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	// 100/4 = 25 rows plus the scale line.
	if len(lines) != 26 {
		t.Errorf("downsampled to %d lines, want 26", len(lines))
	}
}

func TestHeatmapErrors(t *testing.T) {
	if err := (&Heatmap{}).Render(&bytes.Buffer{}); err == nil {
		t.Error("empty heatmap accepted")
	}
	h := &Heatmap{Values: [][]float64{{0, 0}, {0, 0}}}
	if err := h.Render(&bytes.Buffer{}); err == nil {
		t.Error("all-zero heatmap accepted")
	}
}

func TestAxisFracClamps(t *testing.T) {
	a, err := newAxis([]float64{1, 10}, false)
	if err != nil {
		t.Fatal(err)
	}
	if a.frac(-5) != 0 || a.frac(100) != 1 {
		t.Error("frac should clamp out-of-range values")
	}
	if f := a.frac(5.5); f < 0.49 || f > 0.51 {
		t.Errorf("frac(5.5) = %v", f)
	}
}
