// Package sched models the cluster's batch scheduler. The paper notes that
// CTE-Arm's scheduler "is aware of the network topology and can allocate
// nodes for user jobs to exploit proximity and reduce the latency of
// messages" — this package implements that policy (greedy hop-distance
// clustering) alongside a random baseline, so experiments can quantify what
// topology-aware placement buys.
package sched

import (
	"fmt"
	"sort"

	"clustereval/internal/topology"
	"clustereval/internal/xrand"
)

// Policy selects the node-allocation strategy.
type Policy int

// Allocation policies.
const (
	// TopologyAware grows allocations around a seed node by hop distance.
	TopologyAware Policy = iota
	// Random scatters the job across free nodes uniformly.
	Random
	// LinearFirstFit takes the lowest-indexed free nodes.
	LinearFirstFit
)

func (p Policy) String() string {
	switch p {
	case TopologyAware:
		return "topology-aware"
	case Random:
		return "random"
	default:
		return "linear-first-fit"
	}
}

// Scheduler tracks node occupancy of one cluster and hands out allocations.
type Scheduler struct {
	topo   topology.Topology
	policy Policy
	busy   []bool
	nBusy  int
	rng    *xrand.Rand
}

// New creates a scheduler over the topology with the given policy; seed
// drives the Random policy deterministically.
func New(topo topology.Topology, policy Policy, seed uint64) *Scheduler {
	return &Scheduler{
		topo:   topo,
		policy: policy,
		busy:   make([]bool, topo.Nodes()),
		rng:    xrand.New(seed),
	}
}

// FreeNodes returns how many nodes are currently unallocated.
func (s *Scheduler) FreeNodes() int { return len(s.busy) - s.nBusy }

// Allocate reserves n nodes and returns their indices (sorted). It fails
// when the cluster does not have n free nodes.
func (s *Scheduler) Allocate(n int) ([]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sched: job size %d must be positive", n)
	}
	if n > s.FreeNodes() {
		return nil, fmt.Errorf("sched: job needs %d nodes, only %d free", n, s.FreeNodes())
	}
	var alloc []int
	switch s.policy {
	case LinearFirstFit:
		alloc = s.allocateLinear(n)
	case Random:
		alloc = s.allocateRandom(n)
	default:
		alloc = s.allocateTopology(n)
	}
	for _, node := range alloc {
		s.busy[node] = true
	}
	s.nBusy += n
	sort.Ints(alloc)
	return alloc, nil
}

func (s *Scheduler) allocateLinear(n int) []int {
	alloc := make([]int, 0, n)
	for i := 0; i < len(s.busy) && len(alloc) < n; i++ {
		if !s.busy[i] {
			alloc = append(alloc, i)
		}
	}
	return alloc
}

func (s *Scheduler) allocateRandom(n int) []int {
	free := make([]int, 0, s.FreeNodes())
	for i, b := range s.busy {
		if !b {
			free = append(free, i)
		}
	}
	perm := s.rng.Perm(len(free))
	alloc := make([]int, n)
	for i := 0; i < n; i++ {
		alloc[i] = free[perm[i]]
	}
	return alloc
}

// allocateTopology grows the job around the free node whose neighbourhood
// is densest: it tries each free node as a seed (sampled for big clusters),
// collects the n nearest free nodes by hop distance, and keeps the seed
// with the smallest total distance.
func (s *Scheduler) allocateTopology(n int) []int {
	free := make([]int, 0, s.FreeNodes())
	for i, b := range s.busy {
		if !b {
			free = append(free, i)
		}
	}
	seedStride := 1
	if len(free) > 48 {
		seedStride = len(free) / 48
	}
	bestCost := -1.0
	var best []int
	for si := 0; si < len(free); si += seedStride {
		seed := free[si]
		cand, cost := s.nearestFrom(seed, free, n)
		if bestCost < 0 || cost < bestCost {
			best, bestCost = cand, cost
		}
	}
	return best
}

// nearestFrom returns the n free nodes closest to seed and the summed hop
// distance of the selection. Ties break on node index for determinism.
func (s *Scheduler) nearestFrom(seed int, free []int, n int) ([]int, float64) {
	type nd struct{ node, hops int }
	ds := make([]nd, len(free))
	for i, f := range free {
		ds[i] = nd{node: f, hops: s.topo.Hops(seed, f)}
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].hops != ds[j].hops {
			return ds[i].hops < ds[j].hops
		}
		return ds[i].node < ds[j].node
	})
	alloc := make([]int, n)
	cost := 0.0
	for i := 0; i < n; i++ {
		alloc[i] = ds[i].node
		cost += float64(ds[i].hops)
	}
	return alloc, cost
}

// Release frees an allocation. It fails on nodes that are not allocated,
// leaving occupancy unchanged in that case.
func (s *Scheduler) Release(nodes []int) error {
	for _, node := range nodes {
		if node < 0 || node >= len(s.busy) {
			return fmt.Errorf("sched: release of invalid node %d", node)
		}
		if !s.busy[node] {
			return fmt.Errorf("sched: release of free node %d", node)
		}
	}
	for _, node := range nodes {
		s.busy[node] = false
	}
	s.nBusy -= len(nodes)
	return nil
}

// AvgPairwiseHops measures the quality of an allocation: the mean hop
// distance over all node pairs (0 for single-node jobs).
func AvgPairwiseHops(topo topology.Topology, alloc []int) float64 {
	if len(alloc) < 2 {
		return 0
	}
	sum, count := 0.0, 0
	for i := range alloc {
		for j := i + 1; j < len(alloc); j++ {
			sum += float64(topo.Hops(alloc[i], alloc[j]))
			count++
		}
	}
	return sum / float64(count)
}
