package sched

import (
	"testing"

	"clustereval/internal/topology"
)

func tofu(t *testing.T) *topology.Torus {
	t.Helper()
	tp, err := topology.NewTofuD(192)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestAllocateBasics(t *testing.T) {
	s := New(tofu(t), TopologyAware, 1)
	alloc, err := s.Allocate(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(alloc) != 16 {
		t.Fatalf("allocated %d nodes", len(alloc))
	}
	seen := map[int]bool{}
	for _, n := range alloc {
		if n < 0 || n >= 192 || seen[n] {
			t.Fatalf("bad allocation %v", alloc)
		}
		seen[n] = true
	}
	if s.FreeNodes() != 176 {
		t.Errorf("free = %d, want 176", s.FreeNodes())
	}
}

func TestAllocateErrors(t *testing.T) {
	s := New(tofu(t), TopologyAware, 1)
	if _, err := s.Allocate(0); err == nil {
		t.Error("zero-size job accepted")
	}
	if _, err := s.Allocate(-4); err == nil {
		t.Error("negative job accepted")
	}
	if _, err := s.Allocate(193); err == nil {
		t.Error("oversized job accepted")
	}
	// Fill the machine, then one more must fail.
	if _, err := s.Allocate(192); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Allocate(1); err == nil {
		t.Error("allocation from a full machine accepted")
	}
}

func TestReleaseCycle(t *testing.T) {
	s := New(tofu(t), LinearFirstFit, 1)
	a, _ := s.Allocate(100)
	b, _ := s.Allocate(92)
	if s.FreeNodes() != 0 {
		t.Fatal("machine should be full")
	}
	if err := s.Release(a); err != nil {
		t.Fatal(err)
	}
	if s.FreeNodes() != 100 {
		t.Errorf("free = %d", s.FreeNodes())
	}
	// Double release fails and changes nothing.
	if err := s.Release(a); err == nil {
		t.Error("double release accepted")
	}
	if s.FreeNodes() != 100 {
		t.Error("failed release mutated occupancy")
	}
	if err := s.Release([]int{-1}); err == nil {
		t.Error("invalid node release accepted")
	}
	if err := s.Release(b); err != nil {
		t.Fatal(err)
	}
	if s.FreeNodes() != 192 {
		t.Errorf("free = %d after full release", s.FreeNodes())
	}
}

func TestNoDoubleAllocation(t *testing.T) {
	s := New(tofu(t), Random, 7)
	seen := map[int]bool{}
	for i := 0; i < 12; i++ {
		alloc, err := s.Allocate(16)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range alloc {
			if seen[n] {
				t.Fatalf("node %d allocated twice", n)
			}
			seen[n] = true
		}
	}
}

func TestTopologyAwareBeatsRandom(t *testing.T) {
	topo := tofu(t)
	ta := New(topo, TopologyAware, 1)
	rnd := New(topo, Random, 1)
	for _, jobSize := range []int{8, 16, 48} {
		aT, err := ta.Allocate(jobSize)
		if err != nil {
			t.Fatal(err)
		}
		aR, err := rnd.Allocate(jobSize)
		if err != nil {
			t.Fatal(err)
		}
		hT := AvgPairwiseHops(topo, aT)
		hR := AvgPairwiseHops(topo, aR)
		if hT >= hR {
			t.Errorf("job %d: topology-aware hops %.2f not better than random %.2f",
				jobSize, hT, hR)
		}
		ta.Release(aT)
		rnd.Release(aR)
	}
}

func TestTopologyAwareOnFragmentedMachine(t *testing.T) {
	topo := tofu(t)
	s := New(topo, TopologyAware, 3)
	// Fragment: allocate and release alternating chunks.
	a, _ := s.Allocate(64)
	b, _ := s.Allocate(64)
	s.Release(a)
	// A new job must still get a sensible allocation from the holes.
	c, err := s.Allocate(32)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c {
		for _, bn := range b {
			if n == bn {
				t.Fatal("allocated a busy node")
			}
		}
	}
}

func TestLinearFirstFit(t *testing.T) {
	s := New(tofu(t), LinearFirstFit, 1)
	alloc, _ := s.Allocate(5)
	for i, n := range alloc {
		if n != i {
			t.Errorf("first-fit alloc = %v, want 0..4", alloc)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a1, _ := New(tofu(t), Random, 42).Allocate(16)
	a2, _ := New(tofu(t), Random, 42).Allocate(16)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("random policy not deterministic per seed")
		}
	}
}

func TestAvgPairwiseHopsEdge(t *testing.T) {
	topo := tofu(t)
	if AvgPairwiseHops(topo, []int{5}) != 0 {
		t.Error("single node should have 0 avg hops")
	}
	if AvgPairwiseHops(topo, nil) != 0 {
		t.Error("empty allocation should have 0 avg hops")
	}
}

func TestPolicyStrings(t *testing.T) {
	if TopologyAware.String() != "topology-aware" || Random.String() != "random" ||
		LinearFirstFit.String() != "linear-first-fit" {
		t.Error("policy names")
	}
}
