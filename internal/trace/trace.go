// Package trace records per-rank execution timelines of simulated MPI
// programs and computes the POP (Performance Optimisation and Productivity
// Centre of Excellence) efficiency metrics the paper's group applies to
// parallel codes:
//
//	parallel efficiency = load balance x communication efficiency
//
// where load balance is mean(compute)/max(compute) across ranks and
// communication efficiency is max(compute)/max(runtime). The metrics come
// straight from per-rank accounting of compute versus communication time,
// which internal/mpisim records when a Recorder is attached.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"clustereval/internal/units"
)

// Kind classifies a timeline span.
type Kind int

// Span kinds.
const (
	Compute Kind = iota
	Comm
)

func (k Kind) String() string {
	if k == Compute {
		return "compute"
	}
	return "comm"
}

// Span is one contiguous activity of one rank.
type Span struct {
	Rank       int
	Kind       Kind
	Start, End units.Seconds
}

// Duration returns the span length.
func (s Span) Duration() units.Seconds { return s.End - s.Start }

// Recorder accumulates spans. The zero value is not usable; construct with
// NewRecorder.
type Recorder struct {
	ranks int
	spans []Span
}

// NewRecorder creates a recorder for the given rank count.
func NewRecorder(ranks int) (*Recorder, error) {
	if ranks <= 0 {
		return nil, fmt.Errorf("trace: rank count %d must be positive", ranks)
	}
	return &Recorder{ranks: ranks}, nil
}

// Ranks returns the number of ranks the recorder covers.
func (r *Recorder) Ranks() int { return r.ranks }

// Record appends one span. Spans may arrive out of order; negative-length
// or out-of-range spans are rejected.
func (r *Recorder) Record(rank int, kind Kind, start, end units.Seconds) error {
	if rank < 0 || rank >= r.ranks {
		return fmt.Errorf("trace: rank %d out of [0,%d)", rank, r.ranks)
	}
	if end < start {
		return fmt.Errorf("trace: span ends (%v) before it starts (%v)", end, start)
	}
	r.spans = append(r.spans, Span{Rank: rank, Kind: kind, Start: start, End: end})
	return nil
}

// Spans returns a copy of all recorded spans, ordered by start time.
func (r *Recorder) Spans() []Span {
	out := append([]Span(nil), r.spans...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// Profile is the per-rank accounting.
type Profile struct {
	ComputeTime []units.Seconds // per rank
	CommTime    []units.Seconds // per rank
	Runtime     units.Seconds   // max end over all spans
}

// Profile aggregates the recorded spans.
func (r *Recorder) Profile() Profile {
	p := Profile{
		ComputeTime: make([]units.Seconds, r.ranks),
		CommTime:    make([]units.Seconds, r.ranks),
	}
	for _, s := range r.spans {
		switch s.Kind {
		case Compute:
			p.ComputeTime[s.Rank] += s.Duration()
		case Comm:
			p.CommTime[s.Rank] += s.Duration()
		}
		if s.End > p.Runtime {
			p.Runtime = s.End
		}
	}
	return p
}

// Metrics are the POP multiplicative efficiencies, all in [0, 1].
type Metrics struct {
	LoadBalance        float64 // mean(compute) / max(compute)
	CommunicationEff   float64 // max(compute) / runtime
	ParallelEfficiency float64 // product of the above
}

// Metrics computes the POP efficiencies from the profile. It returns an
// error when nothing was recorded.
func (p Profile) Metrics() (Metrics, error) {
	if p.Runtime <= 0 {
		return Metrics{}, fmt.Errorf("trace: empty profile")
	}
	var sum, max float64
	for _, c := range p.ComputeTime {
		sum += float64(c)
		if float64(c) > max {
			max = float64(c)
		}
	}
	if max == 0 {
		return Metrics{}, fmt.Errorf("trace: no compute time recorded")
	}
	mean := sum / float64(len(p.ComputeTime))
	m := Metrics{
		LoadBalance:      mean / max,
		CommunicationEff: max / float64(p.Runtime),
	}
	m.ParallelEfficiency = m.LoadBalance * m.CommunicationEff
	return m, nil
}

// Gantt renders an ASCII timeline: one row per rank, '#' for compute and
// '.' for communication, over `width` columns of the full runtime.
func (r *Recorder) Gantt(w io.Writer, width int) error {
	if width <= 0 {
		width = 72
	}
	p := r.Profile()
	if p.Runtime <= 0 {
		return fmt.Errorf("trace: nothing to render")
	}
	rows := make([][]byte, r.ranks)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range r.spans {
		lo := int(float64(s.Start) / float64(p.Runtime) * float64(width))
		hi := int(float64(s.End) / float64(p.Runtime) * float64(width))
		if hi >= width {
			hi = width - 1
		}
		glyph := byte('#')
		if s.Kind == Comm {
			glyph = '.'
		}
		for c := lo; c <= hi; c++ {
			// Compute wins ties so short comm spans do not mask work.
			if rows[s.Rank][c] == ' ' || glyph == '#' {
				rows[s.Rank][c] = glyph
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline (%v total; '#'=compute '.'=comm):\n", p.Runtime)
	for rank, row := range rows {
		fmt.Fprintf(&b, "rank %3d |%s|\n", rank, string(row))
	}
	_, err := io.WriteString(w, b.String())
	return err
}
