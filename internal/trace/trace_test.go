package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"clustereval/internal/units"
)

func TestRecorderValidation(t *testing.T) {
	if _, err := NewRecorder(0); err == nil {
		t.Error("zero ranks accepted")
	}
	r, err := NewRecorder(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Record(2, Compute, 0, 1); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if err := r.Record(0, Compute, 2, 1); err == nil {
		t.Error("negative-length span accepted")
	}
	if r.Ranks() != 2 {
		t.Error("ranks")
	}
}

func TestSpansSorted(t *testing.T) {
	r, _ := NewRecorder(2)
	mustRecord(t, r, 1, Comm, 5, 6)
	mustRecord(t, r, 0, Compute, 0, 2)
	mustRecord(t, r, 0, Comm, 2, 3)
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("%d spans", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatal("spans not sorted")
		}
	}
	if spans[0].Duration() != 2 {
		t.Errorf("duration = %v", spans[0].Duration())
	}
}

func mustRecord(t *testing.T, r *Recorder, rank int, k Kind, s, e units.Seconds) {
	t.Helper()
	if err := r.Record(rank, k, s, e); err != nil {
		t.Fatal(err)
	}
}

func TestPOPMetricsPerfectRun(t *testing.T) {
	// Two ranks, equal compute, no comm: all efficiencies = 1.
	r, _ := NewRecorder(2)
	mustRecord(t, r, 0, Compute, 0, 10)
	mustRecord(t, r, 1, Compute, 0, 10)
	m, err := r.Profile().Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.LoadBalance != 1 || m.CommunicationEff != 1 || m.ParallelEfficiency != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestPOPMetricsImbalance(t *testing.T) {
	// Rank 0 computes 10s, rank 1 computes 5s; both finish at 10.
	r, _ := NewRecorder(2)
	mustRecord(t, r, 0, Compute, 0, 10)
	mustRecord(t, r, 1, Compute, 0, 5)
	mustRecord(t, r, 1, Comm, 5, 10)
	m, err := r.Profile().Metrics()
	if err != nil {
		t.Fatal(err)
	}
	// mean = 7.5, max = 10 -> LB 0.75; runtime 10 = max compute -> CommE 1.
	if math.Abs(m.LoadBalance-0.75) > 1e-12 {
		t.Errorf("LB = %v, want 0.75", m.LoadBalance)
	}
	if math.Abs(m.CommunicationEff-1) > 1e-12 {
		t.Errorf("CommE = %v, want 1", m.CommunicationEff)
	}
	if math.Abs(m.ParallelEfficiency-0.75) > 1e-12 {
		t.Errorf("PE = %v", m.ParallelEfficiency)
	}
}

func TestPOPMetricsCommBound(t *testing.T) {
	// Balanced compute but half the runtime is communication.
	r, _ := NewRecorder(2)
	for rank := 0; rank < 2; rank++ {
		mustRecord(t, r, rank, Compute, 0, 5)
		mustRecord(t, r, rank, Comm, 5, 10)
	}
	m, err := r.Profile().Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.LoadBalance-1) > 1e-12 || math.Abs(m.CommunicationEff-0.5) > 1e-12 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestMetricsErrors(t *testing.T) {
	r, _ := NewRecorder(2)
	if _, err := r.Profile().Metrics(); err == nil {
		t.Error("empty profile accepted")
	}
	mustRecord(t, r, 0, Comm, 0, 5)
	if _, err := r.Profile().Metrics(); err == nil {
		t.Error("comm-only profile accepted")
	}
}

func TestGantt(t *testing.T) {
	r, _ := NewRecorder(2)
	mustRecord(t, r, 0, Compute, 0, 8)
	mustRecord(t, r, 0, Comm, 8, 10)
	mustRecord(t, r, 1, Compute, 0, 4)
	mustRecord(t, r, 1, Comm, 4, 10)
	var buf bytes.Buffer
	if err := r.Gantt(&buf, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "rank   0") || !strings.Contains(out, "rank   1") {
		t.Errorf("gantt rows missing:\n%s", out)
	}
	// Rank 1's row has more '.' than rank 0's.
	lines := strings.Split(out, "\n")
	dots := func(s string) int { return strings.Count(s, ".") }
	if dots(lines[2]) <= dots(lines[1]) {
		t.Errorf("comm share not visible:\n%s", out)
	}

	empty, _ := NewRecorder(1)
	if err := empty.Gantt(&buf, 40); err == nil {
		t.Error("empty gantt accepted")
	}
}

func TestKindString(t *testing.T) {
	if Compute.String() != "compute" || Comm.String() != "comm" {
		t.Error("kind names")
	}
}
