package memsim

import (
	"math"
	"testing"

	"clustereval/internal/machine"
	"clustereval/internal/omp"
	"clustereval/internal/units"
)

func gb(bw units.BytesPerSecond) float64 { return bw.GB() }

func TestKernelAccounting(t *testing.T) {
	if Copy.BytesPerElement() != 16 || Scale.BytesPerElement() != 16 {
		t.Error("copy/scale bytes")
	}
	if Add.BytesPerElement() != 24 || Triad.BytesPerElement() != 24 {
		t.Error("add/triad bytes")
	}
	if Copy.FlopsPerElement() != 0 || Scale.FlopsPerElement() != 1 ||
		Add.FlopsPerElement() != 1 || Triad.FlopsPerElement() != 2 {
		t.Error("flops per element")
	}
	names := map[Kernel]string{Copy: "Copy", Scale: "Scale", Add: "Add", Triad: "Triad"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("kernel %d name %q", k, k.String())
		}
	}
}

// Fig. 2 anchors: the paper's OpenMP-only STREAM results.
func TestFig2AnchorsA64FX(t *testing.T) {
	node := machine.CTEArm().Node
	// Best result: 292.0 GB/s with 24 threads (spread), C version.
	team, _ := omp.NewTeam(node, 24, omp.Spread)
	bw, err := TeamBandwidth(team, true, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gb(bw)-292.0) > 0.02*292.0 {
		t.Errorf("A64FX OpenMP 24T = %.1f GB/s, paper 292.0", gb(bw))
	}
	// That is ~29%% of the 1024 GB/s peak.
	pct := 100 * float64(bw) / float64(node.MemoryPeak())
	if pct < 27 || pct < 0 || pct > 31 {
		t.Errorf("percent of peak = %.1f, paper 29", pct)
	}
}

func TestFig2BestThreadCounts(t *testing.T) {
	// A64FX peaks at 24 threads; MN4 peaks at 48 (paper Section III-B).
	bestArm, bestMN4 := 0, 0
	var maxArm, maxMN4 units.BytesPerSecond
	for n := 1; n <= 48; n++ {
		teamA, _ := omp.NewTeam(machine.CTEArm().Node, n, omp.Spread)
		bwA, err := TeamBandwidth(teamA, true, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if bwA > maxArm {
			maxArm, bestArm = bwA, n
		}
		teamM, _ := omp.NewTeam(machine.MareNostrum4().Node, n, omp.Spread)
		bwM, err := TeamBandwidth(teamM, true, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if bwM > maxMN4 {
			maxMN4, bestMN4 = bwM, n
		}
	}
	if bestArm != 24 {
		t.Errorf("A64FX best thread count = %d, paper: 24", bestArm)
	}
	if bestMN4 != 48 {
		t.Errorf("MN4 best thread count = %d, paper: 48", bestMN4)
	}
	if math.Abs(gb(maxMN4)-201.2) > 0.01*201.2 {
		t.Errorf("MN4 best = %.1f GB/s, paper 201.2", gb(maxMN4))
	}
}

// Fig. 3 anchors: hybrid MPI+OpenMP Triad.
func TestFig3AnchorsHybrid(t *testing.T) {
	node := machine.CTEArm().Node
	// 4 ranks x 12 threads, one rank per CMG, all threads local.
	perDomain := []int{12, 12, 12, 12}
	fortran, err := StreamBandwidth(node, perDomain, false, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gb(fortran)-862.6) > 0.02*862.6 {
		t.Errorf("A64FX hybrid Fortran = %.1f GB/s, paper 862.6", gb(fortran))
	}
	pct := 100 * float64(fortran) / float64(node.MemoryPeak())
	if pct < 82 || pct > 86 {
		t.Errorf("percent of peak = %.1f, paper 84", pct)
	}
	// The C version reaches only ~421 GB/s (factor 0.49, unexplained in
	// the paper).
	cver, err := StreamBandwidth(node, perDomain, false, 0.49)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gb(cver)-421.1) > 0.03*421.1 {
		t.Errorf("A64FX hybrid C = %.1f GB/s, paper 421.1", gb(cver))
	}
}

func TestHybridBeatsSharedOnA64FX(t *testing.T) {
	node := machine.CTEArm().Node
	full := []int{12, 12, 12, 12}
	hybrid, _ := StreamBandwidth(node, full, false, 1.0)
	shared, _ := StreamBandwidth(node, full, true, 1.0)
	if float64(hybrid) < 2.5*float64(shared) {
		t.Errorf("hybrid %v should be ~3x shared %v on A64FX", hybrid, shared)
	}
}

func TestSharedEqualsLocalOnMN4(t *testing.T) {
	// First-touch works on MN4: shared-process and per-domain placements
	// give identical bandwidth.
	node := machine.MareNostrum4().Node
	per := []int{24, 24}
	a, _ := StreamBandwidth(node, per, true, 1.0)
	b, _ := StreamBandwidth(node, per, false, 1.0)
	if a != b {
		t.Errorf("MN4 shared %v != local %v", a, b)
	}
}

func TestMonotoneUntilSaturation(t *testing.T) {
	node := machine.MareNostrum4().Node
	prev := units.BytesPerSecond(0)
	for n := 1; n <= 48; n++ {
		team, _ := omp.NewTeam(node, n, omp.Spread)
		bw, err := TeamBandwidth(team, true, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if bw < prev {
			t.Errorf("MN4 bandwidth decreased at %d threads", n)
		}
		prev = bw
	}
}

func TestNeverExceedsPeak(t *testing.T) {
	for _, m := range []machine.Machine{machine.CTEArm(), machine.MareNostrum4()} {
		for n := 1; n <= m.Node.Cores(); n++ {
			for _, shared := range []bool{true, false} {
				team, _ := omp.NewTeam(m.Node, n, omp.Spread)
				bw, err := TeamBandwidth(team, shared, 1.0)
				if err != nil {
					t.Fatal(err)
				}
				if float64(bw) > float64(m.Node.MemoryPeak()) {
					t.Errorf("%s %d threads shared=%v: %v exceeds peak %v",
						m.Name, n, shared, bw, m.Node.MemoryPeak())
				}
			}
		}
	}
}

func TestLanguageFactorScales(t *testing.T) {
	node := machine.CTEArm().Node
	per := []int{6, 6, 6, 6}
	a, _ := StreamBandwidth(node, per, true, 1.0)
	b, _ := StreamBandwidth(node, per, true, 0.91)
	ratio := float64(b) / float64(a)
	if math.Abs(ratio-0.91) > 1e-9 {
		t.Errorf("language factor not multiplicative: %v", ratio)
	}
}

func TestStreamBandwidthErrors(t *testing.T) {
	node := machine.CTEArm().Node
	if _, err := StreamBandwidth(node, []int{1, 1}, true, 1.0); err == nil {
		t.Error("wrong domain arity accepted")
	}
	if _, err := StreamBandwidth(node, []int{0, 0, 0, 0}, true, 1.0); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := StreamBandwidth(node, []int{-1, 1, 0, 0}, true, 1.0); err == nil {
		t.Error("negative threads accepted")
	}
	if _, err := StreamBandwidth(node, []int{13, 0, 0, 0}, true, 1.0); err == nil {
		t.Error("over-capacity domain accepted")
	}
	if _, err := StreamBandwidth(node, []int{1, 0, 0, 0}, true, 0); err == nil {
		t.Error("zero language factor accepted")
	}
}

func TestStreamTime(t *testing.T) {
	// 1e9 Triad elements at 24 GB/s: 24e9 bytes / 24e9 B/s = 1 s.
	got := StreamTime(Triad, 1e9, units.BytesPerSecond(24*units.Giga))
	if math.Abs(float64(got)-1) > 1e-9 {
		t.Errorf("StreamTime = %v", got)
	}
}

func TestMinimumElements(t *testing.T) {
	// The paper's rule: E >= max(1e7, 4*S/8). For the A64FX, S = 32 MiB of
	// L2 -> 4*32Mi/8 = 16.8M elements.
	arm := machine.CTEArm().Node
	got := MinimumElements(arm)
	want := int(4 * 32 * 1024 * 1024 / 8)
	if got != want {
		t.Errorf("A64FX minimum = %d, want %d", got, want)
	}
	// MN4: L3 33 MiB x 2 sockets -> 4*66Mi/8 = 34.6M.
	mn4 := machine.MareNostrum4().Node
	got = MinimumElements(mn4)
	want = int(4 * 2 * 33 * 1024 * 1024 / 8)
	if got != want {
		t.Errorf("MN4 minimum = %d, want %d", got, want)
	}
	// The paper's run sizes satisfy the rule.
	if 610e6 < float64(MinimumElements(arm)) {
		t.Error("paper's CTE-Arm size 610M violates rule")
	}
	if 400e6 < float64(MinimumElements(mn4)) {
		t.Error("paper's MN4 size 400M violates rule")
	}
}

func TestSaturatingEdgeCases(t *testing.T) {
	if saturating(0, 1, 100, 0) != 0 {
		t.Error("zero threads should give zero bandwidth")
	}
	// Huge oversubscription cannot push bandwidth below half the plateau.
	bw := saturating(48, units.BytesPerSecond(50*units.Giga), units.BytesPerSecond(100*units.Giga), 0.5)
	if float64(bw) < 0.49*100*units.Giga {
		t.Errorf("decline floor violated: %v", bw)
	}
}
