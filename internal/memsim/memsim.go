// Package memsim models the sustainable memory bandwidth of a node as a
// function of thread placement — the physics behind the paper's STREAM
// experiments (Figs. 2 and 3).
//
// Two regimes exist:
//
//   - Local (first-touch works, or one MPI rank per NUMA domain): each
//     domain serves its own threads, and the node's aggregate bandwidth is
//     the sum of per-domain saturating curves. This regime yields the
//     862.6 GB/s hybrid result on the A64FX and all MareNostrum 4 numbers.
//
//   - Interleaved (a single shared-memory process on a machine whose
//     default paging scatters pages across domains — CTE-Arm): traffic
//     crosses the CMG ring bus and the whole node is capped near 294 GB/s,
//     which is why the paper's OpenMP-only STREAM reaches only 29 % of peak.
package memsim

import (
	"fmt"

	"clustereval/internal/machine"
	"clustereval/internal/omp"
	"clustereval/internal/units"
)

// asym shapes the approach to a domain's saturation bandwidth: with k
// streaming threads the plateau is reached as C*(1 - asym/k). Calibrated on
// the paper's MareNostrum 4 full-node Triad (201.2 GB/s of the 202.2 GB/s
// plateau with 24 threads per socket).
const asym = 0.1212

// Kernel identifies a STREAM kernel.
type Kernel int

// The four STREAM kernels.
const (
	Copy Kernel = iota
	Scale
	Add
	Triad
)

func (k Kernel) String() string {
	switch k {
	case Copy:
		return "Copy"
	case Scale:
		return "Scale"
	case Add:
		return "Add"
	default:
		return "Triad"
	}
}

// BytesPerElement returns the official STREAM byte count per loop iteration
// (8-byte elements; write-allocate traffic not counted, per McCalpin).
func (k Kernel) BytesPerElement() units.Bytes {
	switch k {
	case Copy, Scale:
		return 16
	default:
		return 24
	}
}

// FlopsPerElement returns the floating-point operations per iteration.
func (k Kernel) FlopsPerElement() float64 {
	switch k {
	case Copy:
		return 0
	case Scale, Add:
		return 1
	default:
		return 2
	}
}

// BandwidthFactor returns the kernel's achieved bandwidth relative to
// Triad. Two-array kernels (Copy, Scale) sustain slightly more than the
// three-array ones (fewer concurrent streams per thread), the ordering
// every STREAM run shows.
func (k Kernel) BandwidthFactor() float64 {
	switch k {
	case Copy:
		return 1.03
	case Scale:
		return 1.02
	case Add:
		return 0.985
	default:
		return 1.0
	}
}

// saturating returns the bandwidth k threads extract from a capacity cap
// when one thread alone extracts single, including the oversubscription
// decline beyond the saturation point.
func saturating(k int, single, cap units.BytesPerSecond, oversubSlope float64) units.BytesPerSecond {
	if k <= 0 {
		return 0
	}
	kf := float64(k)
	linear := kf * float64(single)
	plateau := float64(cap) * (1 - asym/kf)
	bw := linear
	if plateau < bw {
		bw = plateau
	}
	if ksat := float64(cap) / float64(single); kf > ksat {
		decline := 1 - oversubSlope*(kf-ksat)
		if decline < 0.5 {
			decline = 0.5 // queue contention never collapses bandwidth fully
		}
		bw *= decline
	}
	if bw < 0 {
		bw = 0
	}
	return units.BytesPerSecond(bw)
}

// StreamBandwidth returns the aggregate streaming bandwidth of a node given
// the number of threads bound to each memory domain.
//
// sharedProcess marks a single OS process spanning the node (OpenMP-only):
// on machines without working first-touch placement its pages interleave
// across domains and the interleave cap applies. langFactor scales for
// code-generation quality per source language (see toolchain.Build).
func StreamBandwidth(node machine.Node, threadsPerDomain []int, sharedProcess bool, langFactor float64) (units.BytesPerSecond, error) {
	if len(threadsPerDomain) != len(node.Domains) {
		return 0, fmt.Errorf("memsim: %d thread counts for %d domains",
			len(threadsPerDomain), len(node.Domains))
	}
	if langFactor <= 0 {
		return 0, fmt.Errorf("memsim: non-positive language factor %v", langFactor)
	}
	total := 0
	for d, k := range threadsPerDomain {
		if k < 0 || k > node.Domains[d].Cores {
			return 0, fmt.Errorf("memsim: domain %d has %d threads, cores %d",
				d, k, node.Domains[d].Cores)
		}
		total += k
	}
	if total == 0 {
		return 0, fmt.Errorf("memsim: no threads")
	}

	if sharedProcess && !node.FirstTouchNUMA {
		// Interleaved regime: the whole node behaves as one capped pool.
		bw := saturating(total, node.InterleavedCoreBW, node.InterleaveCap, node.OversubSlope)
		return units.BytesPerSecond(float64(bw) * langFactor), nil
	}

	var sum float64
	for d, k := range threadsPerDomain {
		dom := node.Domains[d]
		capBW := units.BytesPerSecond(float64(dom.PeakBW) * dom.StreamEff)
		sum += float64(saturating(k, dom.SingleCore, capBW, node.OversubSlope))
	}
	return units.BytesPerSecond(sum * langFactor), nil
}

// TeamBandwidth prices an omp.Team directly: the placement comes from the
// team's binding.
func TeamBandwidth(team *omp.Team, sharedProcess bool, langFactor float64) (units.BytesPerSecond, error) {
	return StreamBandwidth(team.Node(), team.ThreadsPerDomain(), sharedProcess, langFactor)
}

// StreamTime returns how long one pass of kernel k over n elements takes at
// the given sustained bandwidth.
func StreamTime(k Kernel, n int, bw units.BytesPerSecond) units.Seconds {
	return units.TimeFor(units.Bytes(float64(n)*float64(k.BytesPerElement())), bw)
}

// MinimumElements returns the STREAM array-size rule from the paper:
// E >= max(10^7, 4*S/8) where S is the last-level cache size in bytes.
func MinimumElements(node machine.Node) int {
	var llc float64
	for _, c := range node.Core.Caches {
		total := c.SizeBytes
		if c.Shared {
			total *= float64(len(node.Domains))
		} else {
			total *= float64(node.Cores())
		}
		if c.Level >= lastLevel(node) {
			llc = total
		}
	}
	e := int(4 * llc / 8)
	if e < 1e7 {
		e = 1e7
	}
	return e
}

func lastLevel(node machine.Node) int {
	max := 0
	for _, c := range node.Core.Caches {
		if c.Level > max {
			max = c.Level
		}
	}
	return max
}
