// Topology-explorer: walk the CTE-Arm TofuD torus.
//
// It prints the 6-D topology shape, the hop-distance histogram, what the
// topology-aware scheduler buys over random placement, and hunts the
// degraded node of Fig. 4 the same way the paper's all-pairs sweep did.
//
//	go run ./examples/topology-explorer
package main

import (
	"fmt"
	"log"

	"clustereval/internal/bench/osu"
	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/sched"
	"clustereval/internal/topology"
	"clustereval/internal/units"
)

func main() {
	arm := machine.CTEArm()
	topo, err := topology.NewTofuD(arm.Nodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TofuD torus: %d nodes, dimensions %v, diameter %d hops\n\n",
		topo.Nodes(), topo.Dims(), topo.Diameter())

	// Hop-distance histogram over all pairs.
	counts := make([]int, topo.Diameter()+1)
	for i := 0; i < topo.Nodes(); i++ {
		for j := i + 1; j < topo.Nodes(); j++ {
			counts[topo.Hops(i, j)]++
		}
	}
	fmt.Println("pairs per hop distance:")
	for h, c := range counts {
		bar := ""
		for i := 0; i < c/100; i++ {
			bar += "#"
		}
		fmt.Printf("  %d hops: %5d %s\n", h, c, bar)
	}
	fmt.Println()

	// Scheduler comparison: topology-aware vs random allocations.
	fmt.Println("job placement quality (mean pairwise hops):")
	for _, jobSize := range []int{8, 16, 48, 96} {
		ta, err := sched.New(topo, sched.TopologyAware, 1).Allocate(jobSize)
		if err != nil {
			log.Fatal(err)
		}
		rnd, err := sched.New(topo, sched.Random, 1).Allocate(jobSize)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3d nodes: topology-aware %.2f vs random %.2f\n",
			jobSize, sched.AvgPairwiseHops(topo, ta), sched.AvgPairwiseHops(topo, rnd))
	}
	fmt.Println()

	// Degraded-node hunt, as in Fig. 4.
	fab, err := interconnect.NewTofuD(arm, arm.Nodes)
	if err != nil {
		log.Fatal(err)
	}
	h, err := osu.Figure4(fab, units.Bytes(1<<20), 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range h.DegradedReceivers(0.5) {
		fmt.Printf("degraded receiver found: node %d = %s (recv %v, send %v)\n",
			d, topology.TofuNodeName(d), h.MeanAsReceiver(d), h.MeanAsSender(d))
	}
}
