// Scaling-study: a full strong-scaling analysis of one application (Alya)
// with per-phase breakdown, plus a real distributed run of the NEMO ocean
// proxy through the simulated MPI runtime to show the stack executing
// genuine halo exchanges.
//
//	go run ./examples/scaling-study
package main

import (
	"fmt"
	"log"
	"math"

	"clustereval/internal/apps/alya"
	"clustereval/internal/apps/nemo"
	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/mpisim"
)

func main() {
	arm := machine.CTEArm()
	mn4 := machine.MareNostrum4()

	fmt.Println("Alya TestCaseB strong scaling (per-phase, slowest process):")
	fmt.Printf("%-16s %6s %10s %10s %10s\n", "machine", "nodes", "assembly", "solver", "total")
	for _, spec := range []struct {
		m     machine.Machine
		nodes []int
	}{
		{arm, []int{12, 16, 22, 44, 62, 78}},
		{mn4, []int{12, 16, 32, 64}},
	} {
		model, err := alya.NewModel(spec.m, alya.TestCaseB())
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range spec.nodes {
			asm, sol, total, err := model.StepTimes(n)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-16s %6d %10s %10s %10s\n", spec.m.Name, n, asm, sol, total)
		}
	}

	// Phase character: the assembly is compute-bound (hurt by the scalar
	// fallback), the solver memory-bound (helped by HBM).
	ma, err := alya.NewModel(arm, alya.TestCaseB())
	if err != nil {
		log.Fatal(err)
	}
	mm, err := alya.NewModel(mn4, alya.TestCaseB())
	if err != nil {
		log.Fatal(err)
	}
	asmA, solA, _, _ := ma.StepTimes(12)
	asmM, solM, _, _ := mm.StepTimes(12)
	fmt.Printf("\nphase gaps at 12 nodes: assembly %.2fx, solver %.2fx (paper: 4.96x / 1.79x)\n\n",
		float64(asmA)/float64(asmM), float64(solA)/float64(solM))

	// Real distributed execution: the NEMO proxy on the simulated MPI
	// runtime, with actual data in the halos.
	fab, err := interconnect.NewTofuD(arm, 12)
	if err != nil {
		log.Fatal(err)
	}
	w, err := mpisim.NewWorld(fab, 8, 4) // 8 ranks over 2 nodes
	if err != nil {
		log.Fatal(err)
	}
	field, err := nemo.NewField(64, 48)
	if err != nil {
		log.Fatal(err)
	}
	for j := 0; j < field.NY; j++ {
		for i := 0; i < field.NX; i++ {
			dx := float64(i-32) / 64
			dy := float64(j-24) / 48
			field.Set(i, j, math.Exp(-30*(dx*dx+dy*dy)))
		}
	}
	before := field.Mass()
	p := nemo.Params{U: 0.4, V: 0.2, Kappa: 0.1}
	const steps = 40
	out, err := nemo.RunDistributed(w, field, p, steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NEMO proxy on simulated MPI: 8 ranks x %d steps, virtual time %v\n",
		steps, w.Elapsed())
	fmt.Printf("tracer mass before %.6f, after %.6f (conserved to %.1e)\n",
		before, out.Mass(), math.Abs(out.Mass()-before)/before)
}
