// Custom-machine: use the framework as a what-if tool.
//
// The paper concludes that the A64FX's application slowdown comes from the
// toolchain (no SVE in generated code) plus the weak scalar core. This
// example builds two hypothetical variants of CTE-Arm:
//
//   - "CTE-Arm (strong OoO)": same chip but with a Skylake-class scalar
//     out-of-order engine;
//   - "CTE-Arm (SVE compiler)": same chip but with a compiler that
//     vectorizes application loops like ICC does on x86.
//
// and reruns the WRF and Alya models to show which lever closes the gap.
//
//	go run ./examples/custom-machine
package main

import (
	"fmt"
	"log"

	"clustereval/internal/apps/alya"
	"clustereval/internal/apps/wrf"
	"clustereval/internal/machine"
	"clustereval/internal/perfmodel"
	"clustereval/internal/toolchain"
)

func main() {
	mn4 := machine.MareNostrum4()

	baseline := machine.CTEArm()

	strongOoO := machine.CTEArm()
	strongOoO.Node.Core.OoOFactor = 1.0 // Skylake-class scalar engine

	// The compiler lever cannot be expressed as a machine tweak — it is a
	// toolchain property — so compare sustained app-loop rates directly.
	armGNU, err := perfmodel.NewExec(baseline, toolchain.GNUArmSVE(), "WRF")
	if err != nil {
		log.Fatal(err)
	}
	armFJ, err := perfmodel.NewExec(baseline, toolchain.FujitsuArm("1.2.26b"), "WRF")
	if err != nil {
		log.Fatal(err)
	}
	refIntel, err := perfmodel.NewExec(mn4, toolchain.IntelMN4(), "WRF")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sustained per-core rate on application hot loops:")
	fmt.Printf("  %-34s %v\n", "CTE-Arm, GNU (scalar fallback):", armGNU.CoreFlops(toolchain.AppLoop))
	fmt.Printf("  %-34s %v (if it compiled the code)\n", "CTE-Arm, Fujitsu (SVE):", armFJ.CoreFlops(toolchain.AppLoop))
	fmt.Printf("  %-34s %v\n\n", "MareNostrum 4, Intel (AVX-512):", refIntel.CoreFlops(toolchain.AppLoop))

	// Application-level what-if: WRF and Alya slowdowns per machine variant.
	for _, v := range []struct {
		name string
		m    machine.Machine
	}{
		{"baseline A64FX", baseline},
		{"A64FX + strong OoO scalar core", strongOoO},
	} {
		wa, err := wrf.NewModel(v.m, wrf.Iberia4km())
		if err != nil {
			log.Fatal(err)
		}
		wm, err := wrf.NewModel(mn4, wrf.Iberia4km())
		if err != nil {
			log.Fatal(err)
		}
		ta, err := wa.ElapsedTime(16, true)
		if err != nil {
			log.Fatal(err)
		}
		tm, err := wm.ElapsedTime(16, true)
		if err != nil {
			log.Fatal(err)
		}

		aa, err := alya.NewModel(v.m, alya.TestCaseB())
		if err != nil {
			log.Fatal(err)
		}
		am, err := alya.NewModel(mn4, alya.TestCaseB())
		if err != nil {
			log.Fatal(err)
		}
		_, _, taA, err := aa.StepTimes(16)
		if err != nil {
			log.Fatal(err)
		}
		_, _, tmA, err := am.StepTimes(16)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-32s WRF@16 nodes %.2fx slower, Alya@16 nodes %.2fx slower\n",
			v.name+":", float64(ta)/float64(tm), float64(taA)/float64(tmA))
	}
	fmt.Println("\nthe scalar core is the dominant lever — matching the paper's conclusion that")
	fmt.Println("compilers must vectorize for SVE to sidestep it")
}
