// POP-analysis: attach the trace recorder to a simulated MPI program and
// compute the POP Centre-of-Excellence efficiency metrics (the methodology
// of the paper's group at BSC): parallel efficiency = load balance x
// communication efficiency, plus an ASCII Gantt timeline.
//
// The program is a caricature of an unbalanced stencil code: each rank
// computes work proportional to its partition size, exchanges halos with
// its neighbours, and joins a global reduction every step.
//
//	go run ./examples/pop-analysis
package main

import (
	"fmt"
	"log"
	"os"

	"clustereval/internal/interconnect"
	"clustereval/internal/machine"
	"clustereval/internal/mpisim"
	"clustereval/internal/trace"
	"clustereval/internal/units"
)

func main() {
	arm := machine.CTEArm()
	fab, err := interconnect.NewTofuD(arm, 12)
	if err != nil {
		log.Fatal(err)
	}

	for _, imbalance := range []float64{0, 0.5} {
		label := "balanced partitions"
		if imbalance > 0 {
			label = "imbalanced partitions (+50% on the last rank)"
		}
		fmt.Printf("=== %s ===\n", label)

		const ranks = 8
		w, err := mpisim.NewWorld(fab, ranks, 4)
		if err != nil {
			log.Fatal(err)
		}
		rec, err := trace.NewRecorder(ranks)
		if err != nil {
			log.Fatal(err)
		}
		if err := w.AttachRecorder(rec); err != nil {
			log.Fatal(err)
		}

		imb := imbalance
		err = w.Run(func(c *mpisim.Comm) {
			work := units.Seconds(200e-6)
			if c.Rank() == c.Size()-1 {
				work *= units.Seconds(1 + imb)
			}
			right := (c.Rank() + 1) % c.Size()
			left := (c.Rank() - 1 + c.Size()) % c.Size()
			for step := 0; step < 5; step++ {
				c.Compute(work)
				c.Sendrecv(right, 0, units.Bytes(64*1024), nil, left, 0)
				c.AllreduceScalar(work.Micro(), mpisim.OpSum)
			}
		})
		if err != nil {
			log.Fatal(err)
		}

		if err := rec.Gantt(os.Stdout, 64); err != nil {
			log.Fatal(err)
		}
		m, err := rec.Profile().Metrics()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("load balance        : %.3f\n", m.LoadBalance)
		fmt.Printf("communication eff.  : %.3f\n", m.CommunicationEff)
		fmt.Printf("parallel efficiency : %.3f\n\n", m.ParallelEfficiency)
	}
}
