// Quickstart: the minimal tour of the evaluation framework.
//
// It loads the two machine models (Table I), runs the STREAM bandwidth
// sweep and the LINPACK model on both, and prints the Table IV speedup
// summary — the paper's whole story in one screen.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"clustereval/internal/bench/stream"
	"clustereval/internal/core"
	"clustereval/internal/hpl"
	"clustereval/internal/machine"
	"clustereval/internal/toolchain"
)

func main() {
	arm := machine.CTEArm()
	mn4 := machine.MareNostrum4()

	fmt.Printf("machines: %s (%d nodes, %s/node) vs %s (%d nodes, %s/node)\n\n",
		arm.Name, arm.Nodes, arm.Node.DoublePeak(),
		mn4.Name, mn4.Nodes, mn4.Node.DoublePeak())

	// Memory bandwidth: the A64FX's HBM2 shines only when the run is laid
	// out NUMA-correctly (hybrid MPI+OpenMP), exactly as the paper found.
	omp, err := stream.Figure2(arm, toolchain.StreamOpenMPArm(), toolchain.C, 610e6)
	if err != nil {
		log.Fatal(err)
	}
	hyb, err := stream.Figure3(arm, toolchain.StreamHybridArm(), toolchain.Fortran)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("STREAM Triad on %s:\n", arm.Name)
	fmt.Printf("  OpenMP-only : %v at %d threads (%.0f%% of peak)\n",
		omp.Best.Bandwidth, omp.Best.Threads, omp.PercentOfPeak)
	fmt.Printf("  MPI+OpenMP  : %v at %s ranks x threads (%.0f%% of peak)\n\n",
		hyb.Best.Bandwidth, hyb.Best.Label(), hyb.PercentOfPeak)

	// LINPACK: the vendor-tuned benchmark favours the A64FX...
	a, err := hpl.Predict(arm, 192)
	if err != nil {
		log.Fatal(err)
	}
	m, err := hpl.Predict(mn4, 192)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LINPACK at 192 nodes: %s %.0f%% of peak vs %s %.0f%% -> speedup %.2fx\n\n",
		arm.Name, a.PercentOfPeak, mn4.Name, m.PercentOfPeak,
		float64(a.Perf)/float64(m.Perf))

	// ...while untuned applications lose 2-4x (Table IV).
	ev := core.New()
	rows, err := ev.TableIV()
	if err != nil {
		log.Fatal(err)
	}
	if err := core.RenderTableIV(rows).Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
