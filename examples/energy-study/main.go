// Energy study: energy-to-solution across every machine preset.
//
// It renders the framework's energy-to-solution figure — the canonical
// workload set (STREAM, HPL, HPCG, the five Section V applications) run
// on every registered machine preset through the experiment registry,
// with modeled joules integrated over each run's node-hours and the
// single-node HPL energy-delay product as the ranking metric, in the
// style of the ThunderX2 evaluation (arxiv 2007.04868).
//
//	go run ./examples/energy-study
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"clustereval/internal/experiment"
	"clustereval/internal/figures"
	"clustereval/internal/machine"
)

func main() {
	fmt.Println("registered machine presets:")
	for _, slug := range machine.PresetNames() {
		m, _ := machine.Preset(slug)
		isa := machine.ISAScalar
		if v := m.Node.Core.BestVector(machine.Double); v != nil {
			isa = v.ISA
		}
		full := machine.Activity{
			ActiveCores: m.Node.Cores(), ISA: isa,
			ComputeFrac: 1, MemBWFrac: 1,
		}
		fmt.Printf("  %-10s %s: %d nodes, %s/node, %.0f W/node full load\n",
			slug, m.Name, m.Nodes, m.Node.DoublePeak(),
			float64(m.NodeEnergy(full, 1).Total()))
	}
	fmt.Println()

	tbl, err := figures.EnergyToSolution()
	if err != nil {
		log.Fatal(err)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The same numbers ride along on every experiment result: any job
	// submitted through the registry (CLI, daemon, fleet) carries an
	// "energy" block next to its kind-specific payload.
	res, err := experiment.Run(context.Background(), experiment.Spec{Kind: "hpl", Machine: "thunderx2", Nodes: 1})
	if err != nil {
		log.Fatal(err)
	}
	e := res.Energy
	fmt.Printf("\nsingle-node HPL on ThunderX2: %.0f s at %.0f W avg = %.1f kJ (EDP %.3g J*s)\n",
		e.ModeledSeconds, e.AvgWatts, e.Joules/1e3, e.EDP)
}
