module clustereval

go 1.22
