// Package clustereval reproduces "Cluster of emerging technology:
// evaluation of a production HPC system based on A64FX" (CLUSTER 2021) as a
// simulation study: machine models of CTE-Arm (Fujitsu A64FX, TofuD torus)
// and MareNostrum 4 (Intel Skylake, OmniPath), a deterministic
// discrete-event MPI runtime, real numerical kernels (LU, multigrid CG,
// stencils, molecular dynamics, spectral transforms) and calibrated
// performance models that regenerate every table and figure of the paper.
//
// The root package holds the benchmark harness (bench_test.go): one
// testing.B benchmark per table and figure. The library lives under
// internal/; the binaries under cmd/; runnable examples under examples/.
// All dispatch flows through internal/experiment, a typed registry that
// defines each job kind (stream, hybrid-stream, fpu, net, hpl, hpcg, app)
// exactly once — parameter schema, defaults, validation, canonical cache
// keys and execution — consumed by the figure harness, the clusterd
// service and the shared CLI driver (internal/experiment/cli) behind every
// cmd/* binary. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for the paper-versus-measured record.
package clustereval
