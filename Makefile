# Reproduction of "Cluster of emerging technology: evaluation of a
# production HPC system based on A64FX" (CLUSTER 2021).
#
# Stdlib-only Go; everything runs offline.

GO ?= go

# Pinned staticcheck release for CI (satisfies "fail the build if it
# cannot run" without chasing @latest breakage).
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: all build vet lint lint-json clusterlint staticcheck test race racesmoke cover bench bench-baseline benchdiff benchdiff-engine difftest fuzz profile ablation paper export serve fleet examples crashtest fleettest disktest loadtest clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis tier (see TESTING.md): go vet, staticcheck, and the
# repo's own clusterlint analyzers driven through `go vet -vettool`.
lint: vet staticcheck clusterlint

# staticcheck is pinned; locally a missing binary degrades to a warning
# (the repo adds no dependencies), but under CI it is a hard failure so
# the check can never silently stop running.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif [ -n "$$CI" ]; then \
		echo "lint: staticcheck $(STATICCHECK_VERSION) is required in CI but not installed" >&2; \
		exit 1; \
	else \
		echo "lint: staticcheck not installed, skipping (CI enforces it)"; \
	fi

# The in-repo analysis suite: determinism, detflow, ctxflow, canonkey,
# lockorder, goroleak, atomicfield, unitsafe, errwrap. Built from source
# every run (it is part of the module) and executed by go vet, which
# handles export data, fact propagation between packages (vetx files)
# and caching.
clusterlint:
	$(GO) build -o bin/clusterlint ./cmd/clusterlint
	$(GO) vet -vettool=$(abspath bin/clusterlint) ./...

# Machine-readable lint: the same nine analyzers, emitting one JSON
# object per package ({"pkg": {"analyzer": [diagnostics]}}) including
# suppressed findings with their //lint:allow justifications. Exits 0;
# consumers filter on "suppressed": false.
lint-json:
	$(GO) build -o bin/clusterlint ./cmd/clusterlint
	$(GO) vet -vettool=$(abspath bin/clusterlint) -json ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-detector smoke over the acceptance harnesses: shortened
# fleettest and loadtest runs with every daemon (clusterd, clusterfleet,
# loadgen) built -race. This drives the coordinator, supervisor, journal
# and worker machinery under real concurrent load with the detector on —
# interleavings the unit-test race lane cannot reach.
racesmoke:
	RACE=1 FLEETTEST_JOBS=20 $(GO) run ./scripts/fleettest
	RACE=1 LOADTEST_SMOKE=1 $(GO) run ./scripts/loadtest

# Coverage profile plus per-package floors on the packages the fault
# injection work leans on (internal/service, internal/mpisim).
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1
	./scripts/cover_floor.sh

# The full benchmark harness: one benchmark per table and figure.
bench:
	$(GO) test -bench=. -benchmem .

# Re-record the committed benchmark baseline (BENCH_seed.json). Run on a
# quiet machine after deliberate performance changes.
bench-baseline:
	$(GO) test -bench=. -benchmem . | $(GO) run ./scripts/benchdiff -record -out BENCH_seed.json

# Compare a fresh benchmark run against the committed baseline; exits
# non-zero when ns/op or allocs/op regresses by more than 10%. Advisory
# in CI (continue-on-error) because shared runners are noisy.
benchdiff:
	$(GO) test -bench=. -benchmem . | $(GO) run ./scripts/benchdiff -baseline BENCH_seed.json

# Engine benchmark gate: only the simulator-level benchmarks
# (BenchmarkDES_*, BenchmarkMPISim_*), compared hard against the
# baseline. These measure the DES engine itself, are far less noisy than
# the full-figure benchmarks, and a regression here slows every
# experiment — so CI fails on them.
benchdiff-engine:
	$(GO) test -run '^$$' -bench='^Benchmark(DES|MPISim)_' -benchmem . | \
		$(GO) run ./scripts/benchdiff -baseline BENCH_seed.json -prefix BenchmarkDES_,BenchmarkMPISim_

# The differential tier (see TESTING.md): the calendar-queue fast path
# must schedule bit-identically to the reference heap. Runs the
# engine-level trace comparison, the calq fuzz seeds + oracle tests, the
# experiment-level result comparison for every registered kind, and the
# whole des test suite pinned to the reference queue via the build tag.
difftest:
	$(GO) test -run 'Differential|Oracle|Fuzz|CondSignal|WorkerReuse' -v ./internal/des/... ./internal/experiment/
	$(GO) test -tags desrefqueue ./internal/des/...

# Coverage-guided fuzz smoke over the machine-preset validator. The
# committed corpus (internal/machine/testdata/fuzz) replays as regression
# seeds in every plain `go test` run; this target additionally mutates for
# a short budget so CI keeps probing new layer compositions.
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzPresetValidate' -fuzztime 20s ./internal/machine

# CPU + heap profile of a full Fig. 11 regeneration (NEMO through the
# DES-backed MPI runtime): the standard starting point for engine
# performance work. Inspect with `go tool pprof cpu.pprof`.
profile:
	$(GO) run ./cmd/clustereval -figure 11 -cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null
	@echo "profile: wrote cpu.pprof and mem.pprof (go tool pprof cpu.pprof)"

# Ablations: quantify each modelled mechanism's contribution.
ablation:
	$(GO) test -bench=Ablation -benchtime=1x .

# Reproduce every table and figure of the paper on stdout.
paper:
	$(GO) run ./cmd/clustereval

# Export all tables and figures as CSV into ./paperdata.
export:
	$(GO) run ./cmd/clustereval -out paperdata

# Run the evaluation service on :8080 (see README "Running the
# evaluation service" for the job API).
serve:
	$(GO) run ./cmd/clusterd

# Run a three-shard clusterfleet on :8090 (see README "Running a
# sharded fleet").
fleet:
	$(GO) build -o bin/clusterd ./cmd/clusterd
	$(GO) run ./cmd/clusterfleet -bin bin/clusterd

# Durability acceptance: SIGKILL clusterd mid-workload, restart against
# the same journal, assert every job recovers to a consistent state —
# first single-daemon, then the fleet variant (shard kill + full fleet
# restart through the coordinator).
crashtest:
	$(GO) run ./scripts/crashtest
	$(GO) run ./scripts/fleettest

# Fleet durability acceptance alone: kill a shard mid-workload, restart
# the whole fleet, assert exactly-once terminal states under original
# fleet IDs.
fleettest:
	$(GO) run ./scripts/fleettest

# Replication acceptance: three shards with -replicas 2 -ack-quorum 2,
# >=1k jobs, then rm -rf of the busiest shard's whole data directory +
# SIGKILL. The supervisor must promote the follower's replica and revive
# the shard with zero lost jobs under their original fleet IDs.
disktest:
	$(GO) run ./scripts/disktest

# Fleet SLO acceptance: three shards, >=5k mixed-kind jobs via loadgen,
# kill-one-shard chaos mid-run, throughput/latency SLOs plus merged
# observability asserts.
loadtest:
	$(GO) run ./scripts/loadtest

# Build every example, then smoke-run each one — examples are user-facing
# code and must keep compiling and finishing cleanly.
examples:
	$(GO) build ./examples/...
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/custom-machine
	$(GO) run ./examples/topology-explorer
	$(GO) run ./examples/scaling-study
	$(GO) run ./examples/pop-analysis
	$(GO) run ./examples/energy-study

clean:
	rm -rf paperdata test_output.txt bench_output.txt coverage.out bin cpu.pprof mem.pprof
