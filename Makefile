# Reproduction of "Cluster of emerging technology: evaluation of a
# production HPC system based on A64FX" (CLUSTER 2021).
#
# Stdlib-only Go; everything runs offline.

GO ?= go

.PHONY: all build vet test race bench ablation paper export serve examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full benchmark harness: one benchmark per table and figure.
bench:
	$(GO) test -bench=. -benchmem .

# Ablations: quantify each modelled mechanism's contribution.
ablation:
	$(GO) test -bench=Ablation -benchtime=1x .

# Reproduce every table and figure of the paper on stdout.
paper:
	$(GO) run ./cmd/clustereval

# Export all tables and figures as CSV into ./paperdata.
export:
	$(GO) run ./cmd/clustereval -out paperdata

# Run the evaluation service on :8080 (see README "Running the
# evaluation service" for the job API).
serve:
	$(GO) run ./cmd/clusterd

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/custom-machine
	$(GO) run ./examples/topology-explorer
	$(GO) run ./examples/scaling-study
	$(GO) run ./examples/pop-analysis

clean:
	rm -rf paperdata test_output.txt bench_output.txt
