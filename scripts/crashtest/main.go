// Command crashtest is the durability acceptance harness wired into
// `make crashtest`: it builds clusterd, starts it with a write-ahead
// journal, submits a 50-job workload, kills the daemon with SIGKILL while
// jobs are still in flight, restarts it against the same journal and
// asserts that every job is still known and reaches a consistent terminal
// state — completed results intact, crash victims re-run to completion.
// It exits non-zero with a diagnostic on the first violated invariant.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

const jobCount = 50

// jobView mirrors the fields of service.JobView the harness asserts on.
type jobView struct {
	ID        string          `json:"id"`
	State     string          `json:"state"`
	Error     string          `json:"error"`
	Recovered bool            `json:"recovered"`
	Result    json.RawMessage `json:"result"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crashtest: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("crashtest: PASS")
}

func run() error {
	dir, err := os.MkdirTemp("", "clusterd-crashtest")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bin := filepath.Join(dir, "clusterd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/clusterd")
	if out, err := build.CombinedOutput(); err != nil {
		return fmt.Errorf("building clusterd: %v\n%s", err, out)
	}
	journal := filepath.Join(dir, "journal.wal")

	// Incarnation 1: submit the workload, kill it mid-flight.
	daemon, base, err := startDaemon(bin, journal)
	if err != nil {
		return err
	}
	defer daemon.Process.Kill()

	ids := make([]string, 0, jobCount)
	for i := 0; i < jobCount; i++ {
		// Distinct DES-backed network jobs: slow enough that the kill
		// lands while part of the workload is still queued or running.
		spec := fmt.Sprintf(`{"kind":"net","size_bytes":%d,"iters":60,"src_node":0,"dst_node":%d}`,
			4096+i*512, i+1)
		v, code, err := post(base+"/v1/jobs", spec)
		if err != nil {
			return fmt.Errorf("submitting job %d: %w", i, err)
		}
		if code != http.StatusAccepted && code != http.StatusOK {
			return fmt.Errorf("submitting job %d: HTTP %d", i, code)
		}
		ids = append(ids, v.ID)
	}

	// Let part of the workload finish so the journal holds a mix of
	// terminal and in-flight jobs, then pull the plug.
	if err := waitTerminalCount(base, ids, 5, 30*time.Second); err != nil {
		return fmt.Errorf("before kill: %w", err)
	}
	if err := daemon.Process.Kill(); err != nil { // SIGKILL: no drain, no marker
		return fmt.Errorf("killing daemon: %w", err)
	}
	_ = daemon.Wait()
	fmt.Println("crashtest: daemon killed mid-workload")

	// Incarnation 2: same journal; every job must come back and finish.
	daemon2, base2, err := startDaemon(bin, journal)
	if err != nil {
		return fmt.Errorf("restarting: %w", err)
	}
	defer daemon2.Process.Kill()

	if err := waitTerminalCount(base2, ids, jobCount, 120*time.Second); err != nil {
		return fmt.Errorf("after restart: %w", err)
	}
	recovered := 0
	for _, id := range ids {
		v, err := get(base2 + "/v1/jobs/" + id)
		if err != nil {
			return fmt.Errorf("job %s lost across the crash: %w", id, err)
		}
		if v.State != "done" || len(v.Result) == 0 {
			return fmt.Errorf("job %s ended %q (%s) with result %q, want done",
				id, v.State, v.Error, v.Result)
		}
		if v.Recovered {
			recovered++
		}
	}
	if recovered != jobCount {
		return fmt.Errorf("%d/%d jobs marked recovered after restart", recovered, jobCount)
	}

	metrics, err := getText(base2 + "/v1/metrics")
	if err != nil {
		return err
	}
	if !strings.Contains(metrics, fmt.Sprintf("clusterd_recovered_jobs_total %d", jobCount)) {
		return fmt.Errorf("metrics do not report %d recovered jobs", jobCount)
	}

	// A graceful stop must still work on the recovered journal.
	if err := daemon2.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := daemon2.Wait(); err != nil {
		return fmt.Errorf("daemon exited uncleanly after drain: %w", err)
	}
	fmt.Printf("crashtest: %d jobs recovered, all done after restart\n", jobCount)
	return nil
}

// startDaemon launches clusterd on an ephemeral port and parses the bound
// address from its startup banner.
func startDaemon(bin, journal string) (*exec.Cmd, string, error) {
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0", "-workers", "2", "-journal", journal,
		"-drain-timeout", "60s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Println("  |", line)
			if rest, ok := strings.CutPrefix(line, "clusterd listening on "); ok {
				if i := strings.IndexByte(rest, ' '); i > 0 {
					select {
					case addrCh <- rest[:i]:
					default:
					}
				}
			}
		}
	}()

	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr, nil
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		return nil, "", fmt.Errorf("daemon never announced its address")
	}
}

// waitTerminalCount polls until at least n of the jobs are terminal.
func waitTerminalCount(base string, ids []string, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		terminal := 0
		for _, id := range ids {
			v, err := get(base + "/v1/jobs/" + id)
			if err != nil {
				return err
			}
			switch v.State {
			case "done", "failed", "cancelled":
				terminal++
			}
		}
		if terminal >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("only %d/%d jobs terminal after %v", terminal, n, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func post(url, body string) (jobView, int, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return jobView{}, 0, err
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return jobView{}, resp.StatusCode, err
	}
	return v, resp.StatusCode, nil
}

func get(url string) (jobView, error) {
	resp, err := http.Get(url)
	if err != nil {
		return jobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jobView{}, fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return jobView{}, err
	}
	return v, nil
}

func getText(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	return string(buf), err
}
