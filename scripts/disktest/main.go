// Command disktest is the replication acceptance harness wired into
// `make disktest`: it builds clusterd and clusterfleet, starts a
// three-shard fleet with -replicas 2 -ack-quorum 2, pushes >=1000
// distinct jobs through the coordinator (retrying retryable verdicts the
// way a real client would), then destroys the busiest shard outright —
// rm -rf of its whole data directory (journal plus the replicas it held
// for others) followed by SIGKILL of its child. The supervisor must
// detect the disk loss, promote the follower's replica back into a
// primary journal and respawn the shard over it. The harness asserts
// that every acknowledged job still reaches exactly one terminal state
// under its original fleet ID — a lost disk loses nothing a quorum
// acknowledged — and that the revived fleet is whole: three live shards,
// a recorded promotion, recovered jobs on the victim, and fresh
// submissions completing. It exits non-zero with a diagnostic on the
// first violated invariant.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

const (
	jobCount        = 1000
	terminalBefore  = 300 // jobs that must finish before the disk is destroyed
	submitAttempts  = 200 // retries per job on 429/503/transport errors
	submitRetryWait = 25 * time.Millisecond
)

type jobView struct {
	ID     string          `json:"id"`
	State  string          `json:"state"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "disktest: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("disktest: PASS")
}

func run() error {
	dir, err := os.MkdirTemp("", "clusterfleet-disktest")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	clusterd := filepath.Join(dir, "clusterd")
	clusterfleet := filepath.Join(dir, "clusterfleet")
	for bin, pkg := range map[string]string{clusterd: "./cmd/clusterd", clusterfleet: "./cmd/clusterfleet"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			return fmt.Errorf("building %s: %v\n%s", pkg, err, out)
		}
	}
	data := filepath.Join(dir, "fleet-data")

	fleet, base, err := startFleet(clusterfleet, clusterd, data)
	if err != nil {
		return err
	}
	defer fleet.Process.Kill()
	if err := waitLiveShards(base, 3, 30*time.Second); err != nil {
		return err
	}

	// Submit the workload. Every verdict a real client would retry
	// (shed, quorum miss, transport blip) is retried here; only an
	// acknowledged ID joins the set the durability promise covers.
	ids := make([]string, 0, jobCount)
	seen := map[string]bool{}
	for i := 0; i < jobCount; i++ {
		spec := fmt.Sprintf(`{"kind":"net","size_bytes":%d,"iters":3,"src_node":0,"dst_node":%d}`,
			1024+i*64, 1+i%31)
		v, err := submitWithRetry(base, spec)
		if err != nil {
			return fmt.Errorf("submitting job %d: %w", i, err)
		}
		if v.ID == "" || seen[v.ID] {
			return fmt.Errorf("job %d got duplicate or empty fleet ID %q", i, v.ID)
		}
		seen[v.ID] = true
		ids = append(ids, v.ID)
	}
	fmt.Printf("disktest: %d jobs acknowledged under quorum\n", len(ids))

	// Let a chunk of the workload finish so the destroyed journal holds
	// both terminal results (which must rehydrate) and in-flight jobs
	// (which must re-run exactly once).
	if err := waitTerminalCount(base, ids, terminalBefore, 120*time.Second); err != nil {
		return fmt.Errorf("before disk loss: %w", err)
	}

	victim, pid, err := busiestShard(base, ids)
	if err != nil {
		return err
	}
	// The disk dies first, then the process: rm -rf takes the victim's
	// journal AND every replica it was holding for the other shards,
	// exactly what losing the physical disk would do.
	if err := os.RemoveAll(filepath.Join(data, victim)); err != nil {
		return fmt.Errorf("destroying shard %s data dir: %w", victim, err)
	}
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		return fmt.Errorf("killing shard %s (pid %d): %w", victim, pid, err)
	}
	fmt.Printf("disktest: shard %s (pid %d) lost its disk and was killed\n", victim, pid)

	// Zero lost jobs: every acknowledged ID reaches a terminal state
	// under its original fleet ID, served by the promoted journal.
	if err := waitTerminalCount(base, ids, jobCount, 300*time.Second); err != nil {
		return fmt.Errorf("after disk loss: %w", err)
	}
	for _, id := range ids {
		v, err := get(base + "/v1/jobs/" + id)
		if err != nil {
			return fmt.Errorf("job %s lost across the disk loss: %w", id, err)
		}
		if v.State != "done" || len(v.Result) == 0 {
			return fmt.Errorf("job %s ended %q (%s), want done with a result", id, v.State, v.Error)
		}
	}
	fmt.Printf("disktest: all %d jobs terminal under their original fleet IDs\n", jobCount)

	// The failover must have gone through promotion, not a fresh journal.
	topo, err := getTopology(base)
	if err != nil {
		return err
	}
	if topo.Promotions < 1 {
		return fmt.Errorf("fleet reports %d promotions; the victim came back without its replica", topo.Promotions)
	}
	if err := waitLiveShards(base, 3, 60*time.Second); err != nil {
		return fmt.Errorf("victim never revived: %w", err)
	}
	metrics, err := getText(base + "/v1/metrics")
	if err != nil {
		return err
	}
	needle := `clusterd_recovered_jobs_total{shard="` + victim + `"}`
	if !strings.Contains(metrics, needle) || strings.Contains(metrics, needle+" 0\n") {
		return fmt.Errorf("revived shard %s recovered no jobs from its promoted journal", victim)
	}

	// Merged health must be whole again, and the revived fleet must take
	// fresh quorum-acknowledged work.
	if err := waitHealthzOK(base, 60*time.Second); err != nil {
		return err
	}
	v, err := submitWithRetry(base, `{"kind":"net","size_bytes":2048,"iters":3,"dst_node":7}`)
	if err != nil {
		return fmt.Errorf("fresh submission after failover: %w", err)
	}
	if err := waitTerminalCount(base, []string{v.ID}, 1, 30*time.Second); err != nil {
		return err
	}
	if err := stopFleet(fleet); err != nil {
		return err
	}
	fmt.Printf("disktest: shard %s promoted from its follower and resumed service\n", victim)
	return nil
}

// startFleet launches a replicated clusterfleet on an ephemeral port and
// parses the bound address from its banner.
func startFleet(clusterfleet, clusterd, data string) (*exec.Cmd, string, error) {
	cmd := exec.Command(clusterfleet,
		"-addr", "127.0.0.1:0", "-bin", clusterd, "-shards", "3", "-data", data,
		"-replicas", "2", "-ack-quorum", "2",
		"-workers", "2", "-queue", "512", "-probe-interval", "100ms")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Println("  |", line)
			if rest, ok := strings.CutPrefix(line, "clusterfleet listening on "); ok {
				if i := strings.IndexByte(rest, ' '); i > 0 {
					select {
					case addrCh <- rest[:i]:
					default:
					}
				}
			}
		}
	}()

	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr, nil
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		return nil, "", fmt.Errorf("clusterfleet never announced its address")
	}
}

// stopFleet drains the coordinator and its children via SIGTERM.
func stopFleet(cmd *exec.Cmd) error {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("clusterfleet exited uncleanly: %w", err)
	}
	return nil
}

// submitWithRetry submits one spec, retrying the verdicts the durability
// contract declares retryable: 429 (shed), 503 (quorum miss, draining,
// rerouting) and transport errors. Anything else is a hard failure.
func submitWithRetry(base, spec string) (jobView, error) {
	var lastErr error
	for attempt := 0; attempt < submitAttempts; attempt++ {
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(spec)))
		if err != nil {
			lastErr = err
			time.Sleep(submitRetryWait)
			continue
		}
		var v jobView
		derr := json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusAccepted:
			if derr != nil {
				return jobView{}, fmt.Errorf("decoding accepted submission: %w", derr)
			}
			return v, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			lastErr = fmt.Errorf("HTTP %d", resp.StatusCode)
			time.Sleep(submitRetryWait)
		default:
			return jobView{}, fmt.Errorf("HTTP %d (non-retryable)", resp.StatusCode)
		}
	}
	return jobView{}, fmt.Errorf("gave up after %d attempts: %w", submitAttempts, lastErr)
}

// waitLiveShards polls /v1/healthz until the fleet reports n live shards.
func waitLiveShards(base string, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			var report struct {
				LiveShards int `json:"live_shards"`
			}
			derr := json.NewDecoder(resp.Body).Decode(&report)
			resp.Body.Close()
			if derr == nil && report.LiveShards >= n {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet never reached %d live shards", n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// waitHealthzOK polls the merged health report until its status is "ok".
func waitHealthzOK(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			var report struct {
				Status string `json:"status"`
			}
			derr := json.NewDecoder(resp.Body).Decode(&report)
			resp.Body.Close()
			if derr == nil && report.Status == "ok" {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("merged healthz never recovered to ok")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// getTopology reads /v1/fleet.
func getTopology(base string) (struct {
	Promotions int `json:"promotions_total"`
}, error) {
	var topo struct {
		Promotions int `json:"promotions_total"`
	}
	resp, err := http.Get(base + "/v1/fleet")
	if err != nil {
		return topo, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		return topo, err
	}
	return topo, nil
}

// busiestShard finds the shard owning the most non-terminal jobs and its
// child PID — destroying it maximizes what promotion must recover.
func busiestShard(base string, ids []string) (string, int, error) {
	inflight := map[string]int{}
	for _, id := range ids {
		v, err := get(base + "/v1/jobs/" + id)
		if err != nil {
			continue
		}
		switch v.State {
		case "done", "failed", "cancelled":
		default:
			shard, _, ok := strings.Cut(id, "-")
			if ok {
				inflight[shard]++
			}
		}
	}
	resp, err := http.Get(base + "/v1/fleet")
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var topo struct {
		Shards []struct {
			Name string `json:"name"`
			Live bool   `json:"live"`
			PID  int    `json:"pid"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		return "", 0, err
	}
	best, bestPID, bestCount := "", 0, -1
	for _, s := range topo.Shards {
		if !s.Live || s.PID == 0 {
			continue
		}
		if inflight[s.Name] > bestCount {
			best, bestPID, bestCount = s.Name, s.PID, inflight[s.Name]
		}
	}
	if best == "" {
		return "", 0, fmt.Errorf("no live shard with a PID to destroy")
	}
	return best, bestPID, nil
}

// waitTerminalCount polls until at least n of the jobs are terminal.
// Non-OK answers (a shard answers 503 while its child restarts) count as
// not-terminal-yet and are retried.
func waitTerminalCount(base string, ids []string, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		terminal := 0
		for _, id := range ids {
			v, err := get(base + "/v1/jobs/" + id)
			if err != nil {
				continue
			}
			switch v.State {
			case "done", "failed", "cancelled":
				terminal++
			}
		}
		if terminal >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("only %d/%d jobs terminal after %v", terminal, n, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func get(url string) (jobView, error) {
	resp, err := http.Get(url)
	if err != nil {
		return jobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jobView{}, fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return jobView{}, err
	}
	return v, nil
}

func getText(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err = buf.ReadFrom(resp.Body)
	return buf.String(), err
}
