// Command benchdiff records and compares `go test -bench` results so CI
// can flag performance regressions against a committed baseline.
//
// Record a baseline (reads benchmark text output on stdin):
//
//	go test -bench=. -benchmem . | go run ./scripts/benchdiff -record -out BENCH_seed.json
//
// Compare a fresh run against the baseline:
//
//	go test -bench=. -benchmem . | go run ./scripts/benchdiff -baseline BENCH_seed.json
//
// A benchmark regresses when its ns/op or allocs/op exceeds the baseline
// by more than 10% (plus a small absolute floor so single-digit-alloc
// benchmarks aren't flagged on a one-alloc wobble). Any regression lists
// on stderr and exits 1; benchmarks present on only one side are
// reported but never fail the run. Wall-clock noise makes ns/op jumpy on
// shared CI machines, which is why the CI step comparing the full suite
// is advisory (continue-on-error) — the committed baseline still gives
// reviewers a number to argue with.
//
// -prefix restricts a comparison to benchmarks whose names start with one
// of the given comma-separated prefixes. CI uses it to gate the
// engine-level benchmarks (BenchmarkDES_*, BenchmarkMPISim_*) hard:
//
//	go test -bench='^Benchmark(DES|MPISim)_' -benchmem . \
//	  | go run ./scripts/benchdiff -prefix BenchmarkDES_,BenchmarkMPISim_
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Regression thresholds: relative slack for noise, absolute floors so
// tiny baselines (a 4-alloc benchmark, a 600ns benchmark) need a real
// move, not a rounding wobble, to trip.
const (
	relSlack    = 0.10
	nsFloor     = 100.0
	allocsFloor = 2.0 // B/op is recorded for the curious but not judged
)

// result is one benchmark's recorded figures.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func main() {
	record := flag.Bool("record", false, "write a baseline from stdin instead of comparing")
	out := flag.String("out", "BENCH_seed.json", "baseline file to write with -record")
	baseline := flag.String("baseline", "BENCH_seed.json", "baseline file to compare stdin against")
	prefix := flag.String("prefix", "", "comma-separated name prefixes: compare only matching benchmarks")
	flag.Parse()

	var err error
	if *record {
		err = recordBaseline(os.Stdin, *out)
	} else {
		err = compare(os.Stdin, *baseline, splitPrefixes(*prefix))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// benchLine matches `go test -bench` result lines, e.g.
//
//	BenchmarkFig7_HPCG-8   969796   1319 ns/op   848 B/op   4 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so baselines port across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parse extracts benchmark results from `go test -bench` text output,
// echoing every line through to stdout so the tool can sit at the end of
// a pipe without hiding the run.
func parse(r io.Reader) (map[string]result, error) {
	res := map[string]result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		var cur result
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				cur.NsPerOp = v
			case "B/op":
				cur.BytesPerOp = v
			case "allocs/op":
				cur.AllocsPerOp = v
			}
		}
		if cur.NsPerOp > 0 {
			res[m[1]] = cur
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("no benchmark results on stdin")
	}
	return res, nil
}

func recordBaseline(r io.Reader, path string) error {
	res, err := parse(r)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchdiff: recorded %d benchmarks to %s\n", len(res), path)
	return nil
}

// regressed reports whether got exceeds want by the relative slack plus
// the absolute floor.
func regressed(want, got, floor float64) bool {
	return got > want*(1+relSlack) && got-want > floor
}

// splitPrefixes parses the -prefix flag: nil (match everything) for an
// empty flag, otherwise the non-empty comma-separated entries.
func splitPrefixes(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// matches reports whether name passes the prefix filter (nil = all).
func matches(name string, prefixes []string) bool {
	if len(prefixes) == 0 {
		return true
	}
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func compare(r io.Reader, path string, prefixes []string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w (run `make bench-baseline` to create it)", err)
	}
	base := map[string]result{}
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	fresh, err := parse(r)
	if err != nil {
		return err
	}

	names := make([]string, 0, len(base))
	for name := range base {
		if matches(name, prefixes) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(prefixes) > 0 && len(names) == 0 {
		return fmt.Errorf("no baseline benchmark matches -prefix %s (re-record the baseline?)",
			strings.Join(prefixes, ","))
	}

	var regressions []string
	regressedNames := map[string]bool{}
	compared := 0
	for _, name := range names {
		b := base[name]
		f, ok := fresh[name]
		if !ok {
			fmt.Printf("benchdiff: %s only in baseline (removed?)\n", name)
			continue
		}
		compared++
		if regressed(b.NsPerOp, f.NsPerOp, nsFloor) {
			regressedNames[name] = true
			regressions = append(regressions, fmt.Sprintf(
				"%s: ns/op %.0f -> %.0f (%+.1f%%)", name, b.NsPerOp, f.NsPerOp,
				100*(f.NsPerOp-b.NsPerOp)/b.NsPerOp))
		}
		if regressed(b.AllocsPerOp, f.AllocsPerOp, allocsFloor) {
			regressedNames[name] = true
			regressions = append(regressions, fmt.Sprintf(
				"%s: allocs/op %.0f -> %.0f (%+.1f%%)", name, b.AllocsPerOp, f.AllocsPerOp,
				100*(f.AllocsPerOp-b.AllocsPerOp)/b.AllocsPerOp))
		}
	}
	for name := range fresh {
		if _, ok := base[name]; !ok && matches(name, prefixes) {
			fmt.Printf("benchdiff: %s not in baseline (new — re-record to track it)\n", name)
		}
	}

	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) vs %s:\n", len(regressions), path)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		return fmt.Errorf("%d of %d benchmarks regressed >%.0f%%", len(regressedNames), compared, 100*relSlack)
	}
	fmt.Printf("benchdiff: %d benchmarks within %.0f%% of %s\n", compared, 100*relSlack, path)
	return nil
}
