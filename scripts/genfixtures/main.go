// Command genfixtures regenerates the golden compatibility fixtures under
// internal/experiment/testdata:
//
//   - cachekeys.json: canonical JobSpec -> SHA-256 cache-key pairs covering
//     every registered kind, with and without faults and deadlines. The
//     fixture pins the canonical encoding byte-for-byte, so any refactor
//     that would silently invalidate the result cache or the write-ahead
//     journal fails the golden test instead.
//   - prerefactor.journal: a write-ahead journal produced by a real
//     clusterd service run (submit, execute, clean drain) that the replay
//     golden test re-opens. A journal written by an older build must keep
//     replaying after refactors.
//
// Run it only to intentionally re-pin compatibility, e.g. after a
// deliberate cache-format version bump:
//
//	go run ./scripts/genfixtures
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"clustereval/internal/service"
)

// fixtureCase is one pinned spec. Spec is the submission as a client would
// send it (aliases, omitted defaults); Canonical and Key are what the
// service derived from it.
type fixtureCase struct {
	Name      string          `json:"name"`
	Spec      json.RawMessage `json:"spec"`
	Canonical json.RawMessage `json:"canonical"`
	Key       string          `json:"key"`
}

// cases returns the fixture specs as raw JSON so the fixtures also pin the
// wire format (field names, alias folding), not just Go struct values.
func cases() []struct{ name, spec string } {
	return []struct{ name, spec string }{
		{"stream-defaults", `{"kind":"stream"}`},
		{"stream-fortran-ranks", `{"kind":"stream","machine":"CTE-Arm","language":"fortran","ranks":4}`},
		{"stream-alias-a64fx", `{"kind":"STREAM","machine":"a64fx","language":"C"}`},
		{"stream-deadline", `{"kind":"stream","deadline_ms":60000}`},
		{"hybrid-defaults", `{"kind":"hybrid-stream"}`},
		{"hybrid-mn4-fortran", `{"kind":"hybrid-stream","machine":"marenostrum4","language":"fortran"}`},
		{"fpu-defaults", `{"kind":"fpu"}`},
		{"fpu-iters", `{"kind":"fpu","iters":500}`},
		{"fpu-deadline", `{"kind":"fpu","iters":500,"deadline_ms":5000}`},
		{"net-defaults", `{"kind":"net"}`},
		{"net-pair-64k", `{"kind":"net","size_bytes":65536,"iters":64,"src_node":0,"dst_node":100}`},
		{"net-seeded", `{"kind":"net","seed":42}`},
		{"net-faults-slow-node", `{"kind":"net","faults":{"nodes":[{"node":1,"slowdown":1.5}]}}`},
		{"net-faults-noop-folds", `{"kind":"net","faults":{"nodes":[{"node":1}]}}`},
		{"net-faults-deadline", `{"kind":"net","faults":{"links":[{"src":0,"dst":1,"bandwidth_factor":0.5}]},"deadline_ms":30000}`},
		{"hpl-defaults", `{"kind":"hpl"}`},
		{"hpl-8-nodes", `{"kind":"hpl","nodes":8}`},
		{"hpcg-defaults", `{"kind":"hpcg"}`},
		{"hpcg-vanilla-4", `{"kind":"hpcg","nodes":4,"version":"vanilla"}`},
		{"app-alya", `{"kind":"app","app":"alya"}`},
		{"app-wrf-12-nodes", `{"kind":"app","app":"wrf","nodes":12}`},
		{"app-nemo-mn4", `{"kind":"app","app":"nemo","machine":"mn4"}`},
		{"app-faults", `{"kind":"app","app":"gromacs","faults":{"os_noise":0.1,"seed":7}}`},
		{"app-faults-deadline", `{"kind":"app","app":"gromacs","faults":{"os_noise":0.1,"seed":7},"deadline_ms":120000}`},
	}
}

func main() {
	dir := filepath.Join("internal", "experiment", "testdata")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	if err := writeCacheKeys(filepath.Join(dir, "cachekeys.json")); err != nil {
		fatal(err)
	}
	if err := writeJournal(filepath.Join(dir, "prerefactor.journal")); err != nil {
		fatal(err)
	}
}

func writeCacheKeys(path string) error {
	var out []fixtureCase
	for _, c := range cases() {
		var spec service.JobSpec
		if err := json.Unmarshal([]byte(c.spec), &spec); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		norm, key, err := service.Canonicalize(spec)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		canon, err := json.Marshal(norm)
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		out = append(out, fixtureCase{
			Name: c.name, Spec: json.RawMessage(c.spec),
			Canonical: canon, Key: key,
		})
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", path, "-", len(out), "cases")
	return nil
}

// journalSpecs are the jobs the fixture journal records: one per kind,
// plus a fault-carrying job that fails degraded, so replay exercises done,
// failed and cached states.
func journalSpecs() []string {
	return []string{
		`{"kind":"fpu","iters":500}`,
		`{"kind":"net","size_bytes":1024,"iters":16}`,
		`{"kind":"hpl","nodes":4}`,
		`{"kind":"hpcg","nodes":2}`,
		`{"kind":"app","app":"alya"}`,
		`{"kind":"stream","ranks":8}`,
		`{"kind":"hybrid-stream"}`,
		`{"kind":"net","size_bytes":1024,"iters":16}`, // duplicate spec: same cache key journalled twice
		`{"kind":"net","src_node":0,"dst_node":3,"faults":{"nodes":[{"node":3,"failed":true}]}}`, // fails degraded
	}
}

func writeJournal(path string) error {
	_ = os.Remove(path)
	svc, err := service.OpenDurable(service.Config{
		Workers: 2, MaxRetries: -1, RetryBackoff: -1, JobTimeout: 2 * time.Minute,
	}, path)
	if err != nil {
		return err
	}
	var ids []string
	for _, raw := range journalSpecs() {
		var spec service.JobSpec
		if err := json.Unmarshal([]byte(raw), &spec); err != nil {
			return err
		}
		view, err := svc.Submit(spec)
		if err != nil {
			return fmt.Errorf("submit %s: %w", raw, err)
		}
		ids = append(ids, view.ID)
	}
	deadline := time.Now().Add(3 * time.Minute)
	for _, id := range ids {
		for {
			view, err := svc.Get(id)
			if err != nil {
				return err
			}
			if view.State.Terminal() {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("job %s did not finish", id)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	if err := svc.Close(context.Background()); err != nil {
		return err
	}
	fmt.Println("wrote", path, "-", len(ids), "jobs")
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genfixtures:", err)
	os.Exit(1)
}
