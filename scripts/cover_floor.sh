#!/bin/sh
# Enforce per-package statement-coverage floors on the packages the fault
# injection and degraded-mode machinery lean on hardest. Run via
# `make cover` or the CI coverage job.
set -eu

fail=0
check() {
    pkg=$1
    min=$2
    line=$(go test -cover "$pkg" | tail -n 1)
    pct=$(printf '%s\n' "$line" | sed -n 's/.*coverage: \([0-9][0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "cover_floor: no coverage reported for $pkg:" >&2
        printf '%s\n' "$line" >&2
        fail=1
        return
    fi
    ok=$(awk -v p="$pct" -v m="$min" 'BEGIN { print (p >= m) ? 1 : 0 }')
    if [ "$ok" = 1 ]; then
        echo "cover_floor: $pkg ${pct}% >= ${min}% OK"
    else
        echo "cover_floor: $pkg ${pct}% below floor ${min}%" >&2
        fail=1
    fi
}

check ./internal/service 85
check ./internal/mpisim 90

exit "$fail"
