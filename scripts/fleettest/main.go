// Command fleettest is the fleet durability acceptance harness wired
// into `make crashtest` (and `make fleettest`): it builds clusterd and
// clusterfleet, starts a three-shard fleet, submits a mid-weight
// workload through the coordinator, SIGKILLs the busiest shard's child
// process mid-flight, and asserts that the supervisor restarts it with
// the same journal and that every job still reaches exactly one terminal
// state under its original fleet ID — no losses, no duplicates. It then
// restarts the whole fleet against the same journals and asserts the
// results survive, exercising the prefix-route fallback that keeps fleet
// IDs resolvable without coordinator persistence. It exits non-zero with
// a diagnostic on the first violated invariant.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// jobCount is overridable through FLEETTEST_JOBS for the race-detector
// smoke lane, which trades workload size for instrumented builds.
var jobCount = envInt("FLEETTEST_JOBS", 60)

// envInt reads a positive integer override from the environment.
func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// goBuild compiles pkg into bin, adding -race when the RACE environment
// variable is set (the smoke lane runs every daemon instrumented).
func goBuild(bin, pkg string) *exec.Cmd {
	args := []string{"build"}
	if os.Getenv("RACE") != "" {
		args = append(args, "-race")
	}
	return exec.Command("go", append(args, "-o", bin, pkg)...)
}

type jobView struct {
	ID     string          `json:"id"`
	State  string          `json:"state"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleettest: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("fleettest: PASS")
}

func run() error {
	dir, err := os.MkdirTemp("", "clusterfleet-test")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	clusterd := filepath.Join(dir, "clusterd")
	clusterfleet := filepath.Join(dir, "clusterfleet")
	for bin, pkg := range map[string]string{clusterd: "./cmd/clusterd", clusterfleet: "./cmd/clusterfleet"} {
		if out, err := goBuild(bin, pkg).CombinedOutput(); err != nil {
			return fmt.Errorf("building %s: %v\n%s", pkg, err, out)
		}
	}
	data := filepath.Join(dir, "fleet-data")

	// Incarnation 1: run the workload, kill a shard mid-flight.
	fleet, base, err := startFleet(clusterfleet, clusterd, data)
	if err != nil {
		return err
	}
	defer fleet.Process.Kill()
	if err := waitLiveShards(base, 3, 30*time.Second); err != nil {
		return err
	}

	ids := make([]string, 0, jobCount)
	seen := map[string]bool{}
	for i := 0; i < jobCount; i++ {
		// Distinct DES-backed network jobs, slow enough that the kill
		// lands while part of the workload is queued or running.
		spec := fmt.Sprintf(`{"kind":"net","size_bytes":%d,"iters":60,"src_node":0,"dst_node":%d}`,
			4096+i*512, 1+i%31)
		v, code, err := post(base+"/v1/jobs", spec)
		if err != nil {
			return fmt.Errorf("submitting job %d: %w", i, err)
		}
		if code != http.StatusAccepted && code != http.StatusOK {
			return fmt.Errorf("submitting job %d: HTTP %d", i, code)
		}
		if v.ID == "" || seen[v.ID] {
			return fmt.Errorf("job %d got duplicate or empty fleet ID %q", i, v.ID)
		}
		seen[v.ID] = true
		ids = append(ids, v.ID)
	}

	// Let part of the workload finish, then SIGKILL the shard with the
	// most jobs still in flight.
	if err := waitTerminalCount(base, ids, 10, 60*time.Second); err != nil {
		return fmt.Errorf("before kill: %w", err)
	}
	victim, pid, err := busiestShard(base, ids)
	if err != nil {
		return err
	}
	if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
		return fmt.Errorf("killing shard %s (pid %d): %w", victim, pid, err)
	}
	fmt.Printf("fleettest: shard %s (pid %d) killed mid-workload\n", victim, pid)

	// The supervisor must restart it with the same journal; every job
	// reaches exactly one terminal state under its original fleet ID.
	if err := waitTerminalCount(base, ids, jobCount, 180*time.Second); err != nil {
		return fmt.Errorf("after shard kill: %w", err)
	}
	for _, id := range ids {
		v, err := get(base + "/v1/jobs/" + id)
		if err != nil {
			return fmt.Errorf("job %s lost across the shard kill: %w", id, err)
		}
		if v.State != "done" || len(v.Result) == 0 {
			return fmt.Errorf("job %s ended %q (%s), want done with a result", id, v.State, v.Error)
		}
	}
	metrics, err := getText(base + "/v1/metrics")
	if err != nil {
		return err
	}
	if strings.Contains(metrics, "fleet_shard_restarts_total 0\n") {
		return fmt.Errorf("supervisor reported no restarts after the kill")
	}
	if !strings.Contains(metrics, `clusterd_jobs_submitted_total{shard="`+victim+`"}`) {
		return fmt.Errorf("restarted shard %s missing from the merged exposition", victim)
	}
	fmt.Printf("fleettest: %d jobs done after shard %s was killed and restarted\n", jobCount, victim)

	// Graceful fleet stop, then incarnation 2 against the same journals:
	// every result must still resolve under its original fleet ID.
	if err := stopFleet(fleet); err != nil {
		return err
	}
	fleet2, base2, err := startFleet(clusterfleet, clusterd, data)
	if err != nil {
		return fmt.Errorf("restarting fleet: %w", err)
	}
	defer fleet2.Process.Kill()
	if err := waitLiveShards(base2, 3, 30*time.Second); err != nil {
		return fmt.Errorf("after fleet restart: %w", err)
	}
	if err := waitTerminalCount(base2, ids, jobCount, 120*time.Second); err != nil {
		return fmt.Errorf("after fleet restart: %w", err)
	}
	for _, id := range ids {
		v, err := get(base2 + "/v1/jobs/" + id)
		if err != nil {
			return fmt.Errorf("job %s lost across the fleet restart: %w", id, err)
		}
		if v.State != "done" || len(v.Result) == 0 {
			return fmt.Errorf("job %s ended %q (%s) after fleet restart, want done", id, v.State, v.Error)
		}
	}
	// The restarted fleet still takes fresh work.
	v, code, err := post(base2+"/v1/jobs", `{"kind":"net","size_bytes":2048,"iters":5,"dst_node":7}`)
	if err != nil || (code != http.StatusAccepted && code != http.StatusOK) {
		return fmt.Errorf("fresh submission after fleet restart: HTTP %d, %v", code, err)
	}
	if err := waitTerminalCount(base2, []string{v.ID}, 1, 30*time.Second); err != nil {
		return err
	}
	if err := stopFleet(fleet2); err != nil {
		return err
	}
	fmt.Printf("fleettest: %d jobs intact across a full fleet restart\n", jobCount)
	return nil
}

// startFleet launches clusterfleet on an ephemeral port and parses the
// bound address from its banner.
func startFleet(clusterfleet, clusterd, data string) (*exec.Cmd, string, error) {
	cmd := exec.Command(clusterfleet,
		"-addr", "127.0.0.1:0", "-bin", clusterd, "-shards", "3", "-data", data,
		"-workers", "2", "-queue", "128", "-probe-interval", "100ms")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Println("  |", line)
			if rest, ok := strings.CutPrefix(line, "clusterfleet listening on "); ok {
				if i := strings.IndexByte(rest, ' '); i > 0 {
					select {
					case addrCh <- rest[:i]:
					default:
					}
				}
			}
		}
	}()

	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr, nil
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		return nil, "", fmt.Errorf("clusterfleet never announced its address")
	}
}

// stopFleet drains the coordinator and its children via SIGTERM.
func stopFleet(cmd *exec.Cmd) error {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("clusterfleet exited uncleanly: %w", err)
	}
	return nil
}

// waitLiveShards polls /v1/healthz until the fleet reports n live shards.
func waitLiveShards(base string, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			var report struct {
				LiveShards int `json:"live_shards"`
			}
			derr := json.NewDecoder(resp.Body).Decode(&report)
			resp.Body.Close()
			if derr == nil && report.LiveShards >= n {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet never reached %d live shards", n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// busiestShard finds the shard owning the most non-terminal jobs and its
// child PID.
func busiestShard(base string, ids []string) (string, int, error) {
	inflight := map[string]int{}
	for _, id := range ids {
		v, err := get(base + "/v1/jobs/" + id)
		if err != nil {
			continue
		}
		switch v.State {
		case "done", "failed", "cancelled":
		default:
			shard, _, ok := strings.Cut(id, "-")
			if ok {
				inflight[shard]++
			}
		}
	}
	resp, err := http.Get(base + "/v1/fleet")
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var topo struct {
		Shards []struct {
			Name string `json:"name"`
			Live bool   `json:"live"`
			PID  int    `json:"pid"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		return "", 0, err
	}
	best, bestPID, bestCount := "", 0, -1
	for _, s := range topo.Shards {
		if !s.Live || s.PID == 0 {
			continue
		}
		if inflight[s.Name] > bestCount {
			best, bestPID, bestCount = s.Name, s.PID, inflight[s.Name]
		}
	}
	if best == "" {
		return "", 0, fmt.Errorf("no live shard with a PID to kill")
	}
	return best, bestPID, nil
}

// waitTerminalCount polls until at least n of the jobs are terminal.
// Non-OK answers (a down shard answers 503 while its child restarts) are
// counted as not-terminal-yet and retried.
func waitTerminalCount(base string, ids []string, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		terminal := 0
		for _, id := range ids {
			v, err := get(base + "/v1/jobs/" + id)
			if err != nil {
				continue
			}
			switch v.State {
			case "done", "failed", "cancelled":
				terminal++
			}
		}
		if terminal >= n {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("only %d/%d jobs terminal after %v", terminal, n, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func post(url, body string) (jobView, int, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return jobView{}, 0, err
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return jobView{}, resp.StatusCode, err
	}
	return v, resp.StatusCode, nil
}

func get(url string) (jobView, error) {
	resp, err := http.Get(url)
	if err != nil {
		return jobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jobView{}, fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return jobView{}, err
	}
	return v, nil
}

func getText(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err = buf.ReadFrom(resp.Body)
	return buf.String(), err
}
