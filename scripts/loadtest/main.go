// Command loadtest is the fleet SLO acceptance harness wired into
// `make loadtest`: it builds clusterd, clusterfleet and loadgen, starts
// a three-shard fleet, and drives two loadgen phases against the
// coordinator — a clean sustained phase and a chaos phase during which
// one shard's child process is SIGKILLed mid-workload. Both phases must
// meet their SLOs (minimum throughput, bounded submit and end-to-end
// p99, zero lost jobs, zero clean-job failures); afterwards the harness
// asserts the merged observability surfaces: every shard present in the
// re-labeled exposition, fleet aggregates emitted, supervisor restarts
// counted, and the fleet healthy again. It exits non-zero with a
// diagnostic on the first violated invariant.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// smoke marks the shortened race-detector lane (LOADTEST_SMOKE=1):
// fewer jobs, a looser throughput floor (instrumented binaries are
// several times slower), and no cooldown wave — the health-recovery
// assertion needs a full-size wave to cycle the shards' outcome
// windows, so only the full run makes it.
var smoke = os.Getenv("LOADTEST_SMOKE") != ""

// Two phases of 2500 submissions each: ≥5k jobs through the fleet per
// run, most answered from the shards' result caches once the unique
// pools are primed. Overridable through LOADTEST_JOBS; the smoke lane
// defaults to 600 per phase.
var phaseJobs = defaultPhaseJobs()

func defaultPhaseJobs() int {
	if v := os.Getenv("LOADTEST_JOBS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	if smoke {
		return 300
	}
	return 2500
}

// goBuild compiles pkg into bin, adding -race when the RACE environment
// variable is set.
func goBuild(bin, pkg string) *exec.Cmd {
	args := []string{"build"}
	if os.Getenv("RACE") != "" {
		args = append(args, "-race")
	}
	return exec.Command("go", append(args, "-o", bin, pkg)...)
}

// report mirrors the loadgen JSON report fields the harness asserts on.
type report struct {
	Jobs      int `json:"jobs"`
	Accepted  int `json:"accepted"`
	Cached    int `json:"cached"`
	Shed      int `json:"shed"`
	Failed    int `json:"failed"`
	FaultJobs int `json:"fault_jobs"`
	Lost      int `json:"lost"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadtest: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("loadtest: PASS")
}

func run() error {
	dir, err := os.MkdirTemp("", "clusterfleet-loadtest")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bins := map[string]string{}
	for _, name := range []string{"clusterd", "clusterfleet", "loadgen"} {
		bin := filepath.Join(dir, name)
		if out, err := goBuild(bin, "./cmd/"+name).CombinedOutput(); err != nil {
			return fmt.Errorf("building %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}

	fleet, base, err := startFleet(bins["clusterfleet"], bins["clusterd"], filepath.Join(dir, "fleet-data"))
	if err != nil {
		return err
	}
	defer fleet.Process.Kill()
	if err := waitHealthy(base, 3, 30*time.Second); err != nil {
		return err
	}

	// Phase 1: clean sustained load. The SLOs are deliberately loose —
	// this is a correctness gate that also happens to measure, not a
	// benchmark: CI machines are noisy.
	fmt.Println("loadtest: phase 1 — sustained mixed load")
	rep1, err := runLoadgen(bins["loadgen"], base, phaseArgs(phaseJobs, 1), nil)
	if err != nil {
		return fmt.Errorf("phase 1: %w", err)
	}
	if rep1.FaultJobs == 0 {
		return fmt.Errorf("phase 1 submitted no fault jobs")
	}
	if rep1.Failed+rep1.Shed == 0 {
		return fmt.Errorf("phase 1 fault tranche produced neither failures nor breaker sheds")
	}
	if rep1.Cached == 0 {
		return fmt.Errorf("phase 1 saw no cache hits")
	}

	// Phase 2: the same load with kill-one-shard chaos mid-run. The SLO
	// still demands zero lost jobs: the killed shard's journal recovery
	// and the coordinator's failover must absorb the crash.
	fmt.Println("loadtest: phase 2 — chaos: SIGKILL one shard mid-workload")
	rep2, err := runLoadgen(bins["loadgen"], base, phaseArgs(phaseJobs, 2), func() error {
		time.Sleep(2 * time.Second)
		name, pid, err := anyLiveShard(base)
		if err != nil {
			return err
		}
		fmt.Printf("loadtest: killing shard %s (pid %d)\n", name, pid)
		return syscall.Kill(pid, syscall.SIGKILL)
	})
	if err != nil {
		return fmt.Errorf("phase 2: %w", err)
	}
	if rep2.Lost != 0 {
		return fmt.Errorf("phase 2 lost %d jobs across the shard kill", rep2.Lost)
	}

	if smoke {
		// The smoke lane stops after the chaos phase: its goal is
		// driving the concurrent machinery under instrumented builds,
		// not proving health-window recovery, which needs the full-size
		// cooldown below.
		if err := fleet.Process.Signal(syscall.SIGTERM); err != nil {
			return err
		}
		if err := fleet.Wait(); err != nil {
			return fmt.Errorf("clusterfleet exited uncleanly: %w", err)
		}
		fmt.Printf("loadtest: smoke run, %d jobs across both phases\n", rep1.Jobs+rep2.Jobs)
		return nil
	}

	// Phase 3: clean cooldown wave. The fault tranche left one shard's
	// 128-outcome failure window above the /healthz degradation threshold
	// with no traffic to dilute it; a fresh-seed, fault-free, mostly-unique
	// wave cycles clean outcomes through every shard's window and proves
	// the fleet genuinely returns to "ok" rather than staying pinned
	// degraded.
	fmt.Println("loadtest: phase 3 — clean cooldown wave")
	// Only net-kind pool entries have a parameter space wide enough to
	// miss the shards' result caches, so roughly a quarter of these jobs
	// execute fresh — size the wave so each shard still cycles well over
	// half its 128-outcome window.
	cooldown := []string{
		"-jobs", "1800", "-unique", "1800", "-seed", "3",
		"-fault-every=-1", "-deadline-ms", "600000",
		"-concurrency", "12", "-rate", "400", "-poll-timeout", "3m",
	}
	if _, err := runLoadgen(bins["loadgen"], base, cooldown, nil); err != nil {
		return fmt.Errorf("phase 3: %w", err)
	}

	// The fleet must converge back to healthy and the merged surfaces
	// must account for all of it.
	if err := waitHealthy(base, 3, 60*time.Second); err != nil {
		return fmt.Errorf("fleet did not recover after chaos: %w", err)
	}
	metrics, err := getText(base + "/v1/metrics")
	if err != nil {
		return err
	}
	for _, want := range []string{
		"fleet_forwarded_total ",
		"fleet_clusterd_jobs_submitted_total ",
		`clusterd_jobs_submitted_total{shard="s0"}`,
		`clusterd_jobs_submitted_total{shard="s1"}`,
		`clusterd_jobs_submitted_total{shard="s2"}`,
	} {
		if !strings.Contains(metrics, want) {
			return fmt.Errorf("merged exposition missing %q", want)
		}
	}
	if strings.Contains(metrics, "fleet_shard_restarts_total 0\n") {
		return fmt.Errorf("supervisor reported no restarts after the chaos kill")
	}

	if err := fleet.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := fleet.Wait(); err != nil {
		return fmt.Errorf("clusterfleet exited uncleanly: %w", err)
	}
	fmt.Printf("loadtest: %d jobs across both phases, SLOs met\n", rep1.Jobs+rep2.Jobs)
	return nil
}

// phaseArgs is the shared flag set for the two main load phases: mixed
// kinds over a 200-spec pool (high cache-hit rate once primed), a fault
// tranche every 25th submission, and loose SLO floors suited to noisy CI
// machines.
func phaseArgs(jobs, seed int) []string {
	concurrency, rate, unique := "12", "400", "200"
	pollTimeout, minThroughput, maxSubmitP99, maxE2EP99 := "3m", "25", "5", "90"
	if smoke {
		// Instrumented binaries run the DES kernels several times
		// slower: pace arrivals so the six -race workers keep up
		// (rather than queueing the whole run), shrink the unique-spec
		// pool so the cache-hit assertion still holds, and loosen the
		// latency floors accordingly.
		concurrency, rate, unique = "8", "2", "60"
		pollTimeout, minThroughput, maxSubmitP99, maxE2EP99 = "10m", "0.5", "10", "180"
	}
	return []string{
		"-jobs", fmt.Sprint(jobs),
		"-concurrency", concurrency,
		"-rate", rate,
		"-seed", fmt.Sprint(seed),
		"-unique", unique,
		"-fault-every", "25",
		"-deadline-every", "5",
		"-deadline-ms", "600000",
		"-poll-timeout", pollTimeout,
		"-min-throughput", minThroughput,
		"-max-submit-p99", maxSubmitP99,
		"-max-e2e-p99", maxE2EP99,
	}
}

// runLoadgen executes one loadgen phase and parses its JSON report.
// chaos, when non-nil, runs concurrently with the load (its error fails
// the phase).
func runLoadgen(bin, base string, args []string, chaos func() error) (*report, error) {
	cmd := exec.Command(bin, append([]string{"-url", base, "-json"}, args...)...)
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}

	chaosErr := make(chan error, 1)
	if chaos != nil {
		go func() { chaosErr <- chaos() }()
	} else {
		chaosErr <- nil
	}
	runErr := cmd.Wait()
	if cerr := <-chaosErr; cerr != nil {
		return nil, fmt.Errorf("chaos injection: %w", cerr)
	}
	if runErr != nil {
		return nil, fmt.Errorf("loadgen failed (SLO or harness): %w\n%s", runErr, stdout.String())
	}
	var rep report
	// loadgen prints a human "SLO satisfied" line after the JSON report;
	// decode only the first value.
	if err := json.NewDecoder(&stdout).Decode(&rep); err != nil {
		return nil, fmt.Errorf("parsing loadgen report: %w\n%s", err, stdout.String())
	}
	fmt.Printf("loadtest: phase report: %d jobs, %d accepted, %d cached, %d shed, %d failed, %d lost\n",
		rep.Jobs, rep.Accepted, rep.Cached, rep.Shed, rep.Failed, rep.Lost)
	return &rep, nil
}

// startFleet launches clusterfleet on an ephemeral port and parses the
// bound address from its banner.
func startFleet(clusterfleet, clusterd, data string) (*exec.Cmd, string, error) {
	cmd := exec.Command(clusterfleet,
		"-addr", "127.0.0.1:0", "-bin", clusterd, "-shards", "3", "-data", data,
		"-workers", "4", "-queue", "512", "-cache", "4096", "-probe-interval", "100ms")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "clusterfleet listening on "); ok {
				if i := strings.IndexByte(rest, ' '); i > 0 {
					select {
					case addrCh <- rest[:i]:
					default:
					}
				}
			}
		}
	}()

	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr, nil
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		return nil, "", fmt.Errorf("clusterfleet never announced its address")
	}
}

// waitHealthy polls /v1/healthz until the fleet reports status ok with n
// live shards.
func waitHealthy(base string, n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			var rep struct {
				Status     string `json:"status"`
				LiveShards int    `json:"live_shards"`
			}
			derr := json.NewDecoder(resp.Body).Decode(&rep)
			resp.Body.Close()
			if derr == nil && rep.Status == "ok" && rep.LiveShards >= n {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet never reached ok with %d live shards", n)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// anyLiveShard picks a live supervised shard to kill.
func anyLiveShard(base string) (string, int, error) {
	resp, err := http.Get(base + "/v1/fleet")
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	var topo struct {
		Shards []struct {
			Name string `json:"name"`
			Live bool   `json:"live"`
			PID  int    `json:"pid"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&topo); err != nil {
		return "", 0, err
	}
	for _, s := range topo.Shards {
		if s.Live && s.PID != 0 {
			return s.Name, s.PID, nil
		}
	}
	return "", 0, fmt.Errorf("no live shard with a PID")
}

func getText(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err = buf.ReadFrom(resp.Body)
	return buf.String(), err
}
